/**
 * @file
 * AXI burst interface timing model. The OmniSim runtime library provides
 * AXI interfaces alongside FIFOs (§6.1); here an AXI port is a module-
 * private burst engine backed by a design memory. Because exactly one
 * module owns a port there is no cross-module contention, so AXI timing is
 * purely structural: a read beat k of a burst requested at cycle t becomes
 * available at t + readLatency + k; write beats stream from t + 1; the
 * write response arrives writeAckLatency after the last beat.
 */

#ifndef OMNISIM_RUNTIME_AXI_HH
#define OMNISIM_RUNTIME_AXI_HH

#include <cstdint>
#include <deque>
#include <string>

#include "support/logging.hh"
#include "support/types.hh"

namespace omnisim
{

/** Latency configuration for one AXI port. */
struct AxiConfig
{
    /** Request-to-first-beat latency of a read burst. */
    Cycles readLatency = 8;
    /** Last-beat-to-response latency of a write burst. */
    Cycles writeAckLatency = 4;
};

/**
 * Runtime burst tracking for one AXI port within one engine run.
 * Engines translate the returned (time, weight, tag) dependency into their
 * own constraint representation.
 */
class AxiPortState
{
  public:
    /** A timing dependency: the op may not start before time + weight. */
    struct Dep
    {
        Cycles time = 0;
        Cycles weight = 0;
        std::uint64_t tag = 0;
    };

    explicit AxiPortState(AxiConfig cfg) : cfg_(cfg) {}

    /** Record a read-burst request op that occupied cycle t. */
    void
    pushReadReq(std::uint64_t addr, std::uint32_t len, Cycles t,
                std::uint64_t tag)
    {
        reads_.push_back({addr, len, 0, t, tag});
    }

    /**
     * Consume the next read beat.
     * @param addr_out receives the element address of this beat.
     * @return the dependency bounding the beat's start cycle.
     */
    Dep
    popReadBeat(std::uint64_t &addr_out)
    {
        if (reads_.empty())
            omnisim_fatal("AXI read beat with no outstanding read burst");
        Burst &b = reads_.front();
        addr_out = b.addr + b.beat;
        Dep d{b.reqTime, cfg_.readLatency + b.beat, b.reqTag};
        if (++b.beat == b.len)
            reads_.pop_front();
        return d;
    }

    /** Record a write-burst request op that occupied cycle t. */
    void
    pushWriteReq(std::uint64_t addr, std::uint32_t len, Cycles t,
                 std::uint64_t tag)
    {
        writes_.push_back({addr, len, 0, t, tag});
    }

    /**
     * Consume the next write beat.
     * @param addr_out receives the element address of this beat.
     * @return the dependency bounding the beat's start cycle.
     */
    Dep
    popWriteBeat(std::uint64_t &addr_out)
    {
        if (writes_.empty())
            omnisim_fatal("AXI write beat with no outstanding write burst");
        Burst &b = writes_.front();
        addr_out = b.addr + b.beat;
        Dep d{b.reqTime, 1 + b.beat, b.reqTag};
        ++b.beat;
        return d;
    }

    /**
     * Complete the current write burst.
     * @param last_beat_time cycle of the final data beat.
     * @param last_beat_tag graph tag of the final data beat.
     * @return the dependency bounding the response's cycle.
     */
    Dep
    popWriteResp(Cycles last_beat_time, std::uint64_t last_beat_tag)
    {
        if (writes_.empty())
            omnisim_fatal("AXI write response with no outstanding burst");
        const Burst &b = writes_.front();
        if (b.beat != b.len) {
            omnisim_fatal("AXI write response before all %u beats sent "
                          "(%u so far)", b.len, b.beat);
        }
        writes_.pop_front();
        return {last_beat_time, cfg_.writeAckLatency, last_beat_tag};
    }

    const AxiConfig &config() const { return cfg_; }

  private:
    struct Burst
    {
        std::uint64_t addr = 0;
        std::uint32_t len = 0;
        std::uint32_t beat = 0;
        Cycles reqTime = 0;
        std::uint64_t reqTag = 0;
    };

    AxiConfig cfg_;
    std::deque<Burst> reads_;
    std::deque<Burst> writes_;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_AXI_HH
