/**
 * @file
 * Bounds-checked design memories. Testbench inputs and outputs live here.
 * Out-of-bounds access raises SimCrash, which the C-sim engine reports as
 * the simulated SIGSEGV of Table 3 (producer loops running off the end of
 * their input arrays) and other engines report as a design bug.
 */

#ifndef OMNISIM_RUNTIME_MEMORY_HH
#define OMNISIM_RUNTIME_MEMORY_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/** Thrown on a bounds violation: the moral equivalent of SIGSEGV. */
class SimCrash : public std::runtime_error
{
  public:
    explicit SimCrash(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/** One named, fixed-size memory. */
struct MemoryDecl
{
    std::string name;
    std::size_t size = 0;
};

/**
 * Runtime storage for every memory in a design. Each engine run owns a
 * fresh pool so runs are isolated.
 */
class MemoryPool
{
  public:
    /** Create storage for the given declarations, zero-initialized. */
    explicit MemoryPool(const std::vector<MemoryDecl> &decls);

    /** Overwrite the contents of a memory (testbench input loading). */
    void fill(MemId id, const std::vector<Value> &data);

    /** Bounds-checked load. @throws SimCrash on violation. */
    Value load(MemId id, std::uint64_t idx) const;

    /** Bounds-checked store. @throws SimCrash on violation. */
    void store(MemId id, std::uint64_t idx, Value v);

    /** @return the full contents of a memory. */
    const std::vector<Value> &contents(MemId id) const;

    /** @return number of memories in the pool. */
    std::size_t count() const { return mems_.size(); }

    /** @return the declaration for a memory. */
    const MemoryDecl &decl(MemId id) const;

  private:
    void check(MemId id, std::uint64_t idx, const char *what) const;

    std::vector<MemoryDecl> decls_;
    std::vector<std::vector<Value>> mems_;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_MEMORY_HH
