/**
 * @file
 * Trace event and request kinds. This is the C++ rendering of Table 1 of
 * the paper: the requests Func Sim threads make to the Perf Sim thread.
 * Informative kinds update simulation state; query kinds (the last rows of
 * Table 1) require resolution against hardware timing before the issuing
 * thread may continue.
 */

#ifndef OMNISIM_RUNTIME_EVENT_HH
#define OMNISIM_RUNTIME_EVENT_HH

#include <cstdint>
#include <string>

#include "support/types.hh"

namespace omnisim
{

/** Request/event kinds per Table 1 of the paper. */
enum class EventKind : std::uint8_t
{
    TraceBlock,    ///< A basic block (DSL region) was executed.
    StartTask,     ///< A dataflow task started in a new thread.
    FifoRead,      ///< Blocking FIFO read committed.
    FifoWrite,     ///< Blocking FIFO write committed.
    FifoNbRead,    ///< Non-blocking FIFO read attempt (query).
    FifoNbWrite,   ///< Non-blocking FIFO write attempt (query).
    FifoCanRead,   ///< empty() status check (query).
    FifoCanWrite,  ///< full() status check (query).
    AxiReadReq,    ///< Read burst request issued on AXI.
    AxiWriteReq,   ///< Write burst request issued on AXI.
    AxiRead,       ///< One data beat read from AXI.
    AxiWrite,      ///< One data beat written to AXI.
    AxiWriteResp,  ///< AXI write response received.
    Advance,       ///< Scheduled compute latency (no observable action).
    TaskEnd,       ///< A dataflow task ran to completion.
};

/** @return true for the kinds that the Perf Sim thread must answer. */
constexpr bool
isQueryKind(EventKind k)
{
    return k == EventKind::FifoNbRead || k == EventKind::FifoNbWrite ||
           k == EventKind::FifoCanRead || k == EventKind::FifoCanWrite;
}

/** @return a stable human-readable name for an event kind. */
const char *eventKindName(EventKind k);

/**
 * One recorded trace event. Events are produced by Func Sim contexts and
 * consumed by graph construction, statistics, and the incremental
 * re-simulation constraint checker.
 */
struct Event
{
    EventKind kind = EventKind::TraceBlock;
    ModuleId module = invalidId;
    /** FIFO or AXI id, depending on kind; invalidId when not applicable. */
    std::int32_t channel = invalidId;
    /** 1-based access index within the channel (the w/r of Table 2). */
    std::uint32_t index = 0;
    /** Hardware cycle the event occupies. */
    Cycles cycle = 0;
    /** Cycles the event occupies (1 for FIFO ops, 0 for status checks). */
    Cycles duration = 0;
    /** Outcome for query kinds: did the NB access succeed / is it ready. */
    bool outcome = false;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_EVENT_HH
