/**
 * @file
 * FIFO read/write timing tables — data structure (D) of Fig. 7 in the
 * paper. One table per FIFO records every committed access together with
 * the exact hardware cycle it occupies and the simulation-graph node that
 * represents it. The Perf Sim thread resolves Table 2 queries against these
 * tables; the co-simulator uses them as its per-cycle channel state; the
 * incremental finalizer synthesizes write-after-read edges from them.
 *
 * Tables are deliberately unsynchronized: each engine supplies its own
 * locking discipline (per-FIFO mutex in the OmniSim core, the clock barrier
 * in co-sim, nothing in single-threaded engines).
 */

#ifndef OMNISIM_RUNTIME_FIFO_TABLE_HH
#define OMNISIM_RUNTIME_FIFO_TABLE_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "support/logging.hh"
#include "support/types.hh"

namespace omnisim
{

/** Committed access history and in-flight data for one FIFO channel. */
class FifoTable
{
  public:
    /** Record the w-th write at the given cycle carrying a value. */
    void
    commitWrite(Value v, Cycles cycle, std::uint64_t node)
    {
        writeCycle_.push_back(cycle);
        writeNode_.push_back(node);
        data_.push_back(v);
    }

    /**
     * Record the r-th read at the given cycle.
     *
     * Every engine must establish writes() >= reads() + 1 before
     * committing a read; a violation (a buggy design driver or a co-sim
     * ordering mismatch) would otherwise pop an empty deque — undefined
     * behaviour — so it is diagnosed here in every build type.
     *
     * @return the value that was written r-th.
     */
    Value
    commitRead(Cycles cycle, std::uint64_t node)
    {
        omnisim_assert(!data_.empty(),
                       "FIFO '%s' read underrun: read #%u committed with "
                       "no unread write (%u writes, %u reads)",
                       label(), reads() + 1, writes(), reads());
        readCycle_.push_back(cycle);
        readNode_.push_back(node);
        Value v = data_.front();
        data_.pop_front();
        return v;
    }

    /** @return number of committed writes. */
    std::uint32_t
    writes() const
    {
        return static_cast<std::uint32_t>(writeCycle_.size());
    }

    /** @return number of committed reads. */
    std::uint32_t
    reads() const
    {
        return static_cast<std::uint32_t>(readCycle_.size());
    }

    /** @return cycle of the i-th (1-based) committed write. */
    Cycles writeCycleOf(std::uint32_t i) const { return writeCycle_[i - 1]; }

    /** @return cycle of the i-th (1-based) committed read. */
    Cycles readCycleOf(std::uint32_t i) const { return readCycle_[i - 1]; }

    /** @return graph node of the i-th (1-based) committed write. */
    std::uint64_t writeNodeOf(std::uint32_t i) const
    {
        return writeNode_[i - 1];
    }

    /** @return graph node of the i-th (1-based) committed read. */
    std::uint64_t readNodeOf(std::uint32_t i) const
    {
        return readNode_[i - 1];
    }

    /** @return values written but not yet read, oldest first. */
    const std::deque<Value> &pendingData() const { return data_; }

    // ---- Snapshot access (src/io/ run serialization) ----------------

    /** @return every committed write cycle, in commit order. */
    const std::vector<Cycles> &writeCycles() const { return writeCycle_; }

    /** @return every committed read cycle, in commit order. */
    const std::vector<Cycles> &readCycles() const { return readCycle_; }

    /** @return the graph node of every committed write. */
    const std::vector<std::uint64_t> &writeNodes() const
    {
        return writeNode_;
    }

    /** @return the graph node of every committed read. */
    const std::vector<std::uint64_t> &readNodes() const
    {
        return readNode_;
    }

    /**
     * Rebuild a table from a serialized snapshot (src/io/ rehydration).
     * The caller (io::validateSnapshot) is responsible for semantic
     * validation of untrusted input; the invariants asserted here are
     * the ones every later accessor depends on.
     */
    static FifoTable
    restore(std::vector<Cycles> writeCycle, std::vector<Cycles> readCycle,
            std::vector<std::uint64_t> writeNode,
            std::vector<std::uint64_t> readNode, std::deque<Value> pending,
            std::string label)
    {
        omnisim_assert(writeCycle.size() == writeNode.size() &&
                       readCycle.size() == readNode.size(),
                       "fifo table restore: cycle/node arity mismatch");
        omnisim_assert(writeCycle.size() >= readCycle.size() &&
                       pending.size() ==
                           writeCycle.size() - readCycle.size(),
                       "fifo table restore: pending data inconsistent");
        FifoTable t;
        t.writeCycle_ = std::move(writeCycle);
        t.readCycle_ = std::move(readCycle);
        t.writeNode_ = std::move(writeNode);
        t.readNode_ = std::move(readNode);
        t.data_ = std::move(pending);
        t.label_ = std::move(label);
        return t;
    }

    /** Name the channel for diagnostics (underrun panics). */
    void setLabel(std::string label) { label_ = std::move(label); }

    /** @return the diagnostic label ("?" until setLabel is called). */
    const char *label() const { return label_.empty() ? "?" : label_.c_str(); }

  private:
    std::vector<Cycles> writeCycle_;
    std::vector<Cycles> readCycle_;
    std::vector<std::uint64_t> writeNode_;
    std::vector<std::uint64_t> readNode_;
    std::deque<Value> data_;
    std::string label_;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_FIFO_TABLE_HH
