/**
 * @file
 * FIFO read/write timing tables — data structure (D) of Fig. 7 in the
 * paper. One table per FIFO records every committed access together with
 * the exact hardware cycle it occupies and the simulation-graph node that
 * represents it. The Perf Sim thread resolves Table 2 queries against these
 * tables; the co-simulator uses them as its per-cycle channel state; the
 * incremental finalizer synthesizes write-after-read edges from them.
 *
 * Tables are deliberately unsynchronized: each engine supplies its own
 * locking discipline (per-FIFO mutex in the OmniSim core, the clock barrier
 * in co-sim, nothing in single-threaded engines).
 */

#ifndef OMNISIM_RUNTIME_FIFO_TABLE_HH
#define OMNISIM_RUNTIME_FIFO_TABLE_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/** Committed access history and in-flight data for one FIFO channel. */
class FifoTable
{
  public:
    /** Record the w-th write at the given cycle carrying a value. */
    void
    commitWrite(Value v, Cycles cycle, std::uint64_t node)
    {
        writeCycle_.push_back(cycle);
        writeNode_.push_back(node);
        data_.push_back(v);
    }

    /**
     * Record the r-th read at the given cycle.
     * @return the value that was written r-th.
     */
    Value
    commitRead(Cycles cycle, std::uint64_t node)
    {
        readCycle_.push_back(cycle);
        readNode_.push_back(node);
        Value v = data_.front();
        data_.pop_front();
        return v;
    }

    /** @return number of committed writes. */
    std::uint32_t
    writes() const
    {
        return static_cast<std::uint32_t>(writeCycle_.size());
    }

    /** @return number of committed reads. */
    std::uint32_t
    reads() const
    {
        return static_cast<std::uint32_t>(readCycle_.size());
    }

    /** @return cycle of the i-th (1-based) committed write. */
    Cycles writeCycleOf(std::uint32_t i) const { return writeCycle_[i - 1]; }

    /** @return cycle of the i-th (1-based) committed read. */
    Cycles readCycleOf(std::uint32_t i) const { return readCycle_[i - 1]; }

    /** @return graph node of the i-th (1-based) committed write. */
    std::uint64_t writeNodeOf(std::uint32_t i) const
    {
        return writeNode_[i - 1];
    }

    /** @return graph node of the i-th (1-based) committed read. */
    std::uint64_t readNodeOf(std::uint32_t i) const
    {
        return readNode_[i - 1];
    }

    /** @return values written but not yet read, oldest first. */
    const std::deque<Value> &pendingData() const { return data_; }

  private:
    std::vector<Cycles> writeCycle_;
    std::vector<Cycles> readCycle_;
    std::vector<std::uint64_t> writeNode_;
    std::vector<std::uint64_t> readNode_;
    std::deque<Value> data_;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_FIFO_TABLE_HH
