#include "runtime/memory.hh"

#include "support/logging.hh"

namespace omnisim
{

MemoryPool::MemoryPool(const std::vector<MemoryDecl> &decls)
    : decls_(decls)
{
    mems_.reserve(decls_.size());
    for (const auto &d : decls_)
        mems_.emplace_back(d.size, 0);
}

void
MemoryPool::fill(MemId id, const std::vector<Value> &data)
{
    omnisim_assert(id >= 0 && static_cast<std::size_t>(id) < mems_.size(),
                   "bad memory id %d", id);
    omnisim_assert(data.size() <= mems_[id].size(),
                   "fill of %zu values into memory '%s' of size %zu",
                   data.size(), decls_[id].name.c_str(), mems_[id].size());
    std::copy(data.begin(), data.end(), mems_[id].begin());
}

void
MemoryPool::check(MemId id, std::uint64_t idx, const char *what) const
{
    if (id < 0 || static_cast<std::size_t>(id) >= mems_.size())
        throw SimCrash(strf("%s of invalid memory id %d", what, id));
    if (idx >= mems_[id].size()) {
        throw SimCrash(strf(
            "%s out of bounds: %s[%llu], size %zu", what,
            decls_[id].name.c_str(),
            static_cast<unsigned long long>(idx), mems_[id].size()));
    }
}

Value
MemoryPool::load(MemId id, std::uint64_t idx) const
{
    check(id, idx, "load");
    return mems_[id][idx];
}

void
MemoryPool::store(MemId id, std::uint64_t idx, Value v)
{
    check(id, idx, "store");
    mems_[id][idx] = v;
}

const std::vector<Value> &
MemoryPool::contents(MemId id) const
{
    omnisim_assert(id >= 0 && static_cast<std::size_t>(id) < mems_.size(),
                   "bad memory id %d", id);
    return mems_[id];
}

const MemoryDecl &
MemoryPool::decl(MemId id) const
{
    omnisim_assert(id >= 0 && static_cast<std::size_t>(id) < decls_.size(),
                   "bad memory id %d", id);
    return decls_[id];
}

} // namespace omnisim
