#include "runtime/timing.hh"

#include "support/logging.hh"

namespace omnisim
{

TimingModel::TimingModel(std::uint64_t entry_tag, Cycles start)
    : now_(start), prevT_(start), prevTag_(entry_tag)
{}

Cycles
TimingModel::earliest() const
{
    Cycles e = now_;
    if (!pipes_.empty()) {
        const Pipe &p = pipes_.back();
        if (p.opIdx < p.prevIter.size()) {
            const Cycles cross = p.prevIter[p.opIdx].t + p.ii;
            if (cross > e)
                e = cross;
        }
    }
    return e;
}

Cycles
TimingModel::retroFloor() const
{
    Cycles f = earliest();
    for (const Pipe &p : pipes_) {
        // Future iterations of this pipe are bounded below by its first
        // committed slot plus II (slots within an iteration are
        // time-ordered, so the first is the least). Before any slot is
        // committed, iterations restart from the pipeline entry time.
        Cycles bound;
        if (!p.curIter.empty())
            bound = p.curIter[0].t + p.ii;
        else if (!p.prevIter.empty())
            bound = p.prevIter[0].t + p.ii;
        else
            bound = p.entryNow;
        if (bound < f)
            f = bound;
    }
    return f;
}

std::vector<TimingModel::Constraint>
TimingModel::commitOp(Cycles t, Cycles dur, std::uint64_t tag)
{
    omnisim_assert(t >= earliest(),
                   "op committed at %llu before earliest %llu",
                   static_cast<unsigned long long>(t),
                   static_cast<unsigned long long>(earliest()));

    std::vector<Constraint> cs;
    cs.push_back({prevT_, now_ - prevT_, prevTag_});

    if (!pipes_.empty()) {
        Pipe &p = pipes_.back();
        if (p.opIdx < p.prevIter.size()) {
            const Slot &s = p.prevIter[p.opIdx];
            cs.push_back({s.t, p.ii, s.tag});
        }
        p.curIter.push_back({t, tag});
        ++p.opIdx;
        if (t + dur > p.maxEnd) {
            p.maxEnd = t + dur;
            p.maxEndStart = t;
            p.maxEndTag = tag;
        }
    }

    prevT_ = t;
    prevTag_ = tag;
    now_ = t + dur;
    return cs;
}

void
TimingModel::pipelineBegin(std::uint32_t ii)
{
    omnisim_assert(ii >= 1, "pipeline II must be >= 1, got %u", ii);
    Pipe p;
    p.ii = ii;
    p.entryNow = now_;
    p.entryPrevT = prevT_;
    p.entryPrevTag = prevTag_;
    p.maxEnd = now_;
    p.maxEndStart = prevT_;
    p.maxEndTag = prevTag_;
    pipes_.push_back(std::move(p));
}

void
TimingModel::iterBegin()
{
    omnisim_assert(!pipes_.empty(), "iterBegin outside pipeline scope");
    Pipe &p = pipes_.back();
    if (p.iterCount > 0)
        p.prevIter = std::move(p.curIter);
    ++p.iterCount;
    p.curIter.clear();
    p.opIdx = 0;
    now_ = p.entryNow;
    prevT_ = p.entryPrevT;
    prevTag_ = p.entryPrevTag;
}

void
TimingModel::pipelineEnd()
{
    omnisim_assert(!pipes_.empty(), "pipelineEnd outside pipeline scope");
    Pipe p = std::move(pipes_.back());
    pipes_.pop_back();
    // The chain anchor becomes the op whose completion drains last. Its
    // recorded time is the op START (what the simulation graph resolves),
    // so subsequent program-order weights include the op's duration.
    now_ = p.maxEnd;
    prevT_ = p.maxEndStart;
    prevTag_ = p.maxEndTag;
    // Propagate drain time into an enclosing pipeline, if any.
    if (!pipes_.empty()) {
        Pipe &outer = pipes_.back();
        if (now_ > outer.maxEnd) {
            outer.maxEnd = now_;
            outer.maxEndStart = p.maxEndStart;
            outer.maxEndTag = p.maxEndTag;
        }
    }
}

} // namespace omnisim
