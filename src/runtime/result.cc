#include "runtime/result.hh"

#include "support/logging.hh"

namespace omnisim
{

const char *
simStatusName(SimStatus s)
{
    switch (s) {
      case SimStatus::Ok:          return "Ok";
      case SimStatus::Deadlock:    return "Deadlock";
      case SimStatus::Crash:       return "Crash";
      case SimStatus::Unsupported: return "Unsupported";
      case SimStatus::Timeout:     return "Timeout";
    }
    return "Unknown";
}

Value
SimResult::scalar(const std::string &mem) const
{
    auto it = memories.find(mem);
    if (it == memories.end() || it->second.empty())
        omnisim_fatal("no such output memory: %s", mem.c_str());
    return it->second.front();
}

} // namespace omnisim
