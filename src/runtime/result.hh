/**
 * @file
 * Engine-independent simulation result. All four engines (C-sim, Co-sim,
 * LightningSim, OmniSim) return this structure so that benchmarks and tests
 * can compare functionality and performance outputs uniformly (Table 3,
 * Fig. 8 of the paper).
 */

#ifndef OMNISIM_RUNTIME_RESULT_HH
#define OMNISIM_RUNTIME_RESULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/** Terminal status of a simulation run. */
enum class SimStatus : std::uint8_t
{
    Ok,          ///< Ran to completion.
    Deadlock,    ///< Design-level deadlock detected (§7.1).
    Crash,       ///< Simulated SIGSEGV (bounds violation) or similar.
    Unsupported, ///< Engine cannot simulate this design type.
    Timeout,     ///< Watchdog cycle/op limit exceeded.
};

/** @return a stable human-readable name for a status. */
const char *simStatusName(SimStatus s);

/** Counters describing how much work an engine performed. */
struct EngineStats
{
    std::uint64_t events = 0;        ///< Total trace events recorded.
    std::uint64_t queries = 0;       ///< Queries created (Table 1 queries).
    std::uint64_t queriesSkipped = 0;///< Removed by dead-check elimination.
    std::uint64_t forcedFalse = 0;   ///< Earliest-query-false resolutions.

    /** Earliest-query-false resolutions whose §7.1 precondition could
     *  NOT be proven from the thread floors — the engine guessed. A
     *  nonzero count marks the run as a documented approximation of the
     *  elastic timing fixpoint (see README, conformance oracle). */
    std::uint64_t forcedBlind = 0;

    /** Deadlock was declared while some paused thread still had an open
     *  elastic window (its pipeline could retroactively issue earlier
     *  ops in real hardware): the serialized engines may deadlock where
     *  the elastic fixpoint completes. */
    std::uint64_t deadlockRetroSuspect = 0;
    std::uint64_t graphNodes = 0;    ///< Simulation graph nodes.
    std::uint64_t graphEdges = 0;    ///< Simulation graph edges.
    std::uint64_t cyclesStepped = 0; ///< Clock steps (co-sim only).
    std::uint64_t threadPauses = 0;  ///< Func Sim thread pauses.
};

/** Result of one simulation run. */
struct SimResult
{
    SimStatus status = SimStatus::Ok;

    /** Total latency in cycles; valid when status == Ok. */
    Cycles totalCycles = 0;

    /** Cycle at which a deadlock was diagnosed; valid for Deadlock. */
    Cycles deadlockCycle = 0;

    /** Human-readable crash/unsupported explanation. */
    std::string message;

    /** Vitis-style warnings emitted during the run (C-sim mostly). */
    std::vector<std::string> warnings;

    /** Post-run contents of every design memory, keyed by name. */
    std::map<std::string, std::vector<Value>> memories;

    EngineStats stats;

    /** @return the first element of the named output memory. */
    Value scalar(const std::string &mem) const;

    /** @return true when the run completed and produced outputs. */
    bool ok() const { return status == SimStatus::Ok; }
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_RESULT_HH
