/**
 * @file
 * The golden timing model shared by every engine.
 *
 * A module's local timeline starts at cycle 1 and advances through ops
 * (FIFO accesses occupy one cycle, status checks are combinational,
 * advance(n) models scheduled compute latency) and through pipelined loop
 * scopes. Pipelines are elastic: the k-th op of iteration i may not start
 * before the k-th op of iteration i-1 plus the initiation interval, and
 * FIFO stalls propagate through these constraints rather than freezing the
 * whole pipeline. This is exactly the dynamic-stage timing LightningSim
 * derives from the HLS static schedule, expressed operationally.
 *
 * The model is pure bookkeeping — it never blocks. Trace-driven engines
 * (LightningSim, OmniSim) place each op at max(earliest(), dependency
 * constraints) directly; the cycle-lockstep co-simulator instead waits on
 * its clock barrier from earliest() until the hardware condition holds.
 * Because both sides use this class, their cycle results agree exactly.
 */

#ifndef OMNISIM_RUNTIME_TIMING_HH
#define OMNISIM_RUNTIME_TIMING_HH

#include <cstdint>
#include <vector>

#include "support/types.hh"

namespace omnisim
{

/**
 * Per-module timing bookkeeping with pipelined-loop scopes.
 *
 * Tags are engine-defined identifiers (simulation graph node ids) carried
 * through so that engines can record the structural constraint edges that
 * were active when an op was placed — the raw material for incremental
 * re-simulation (§7.2 of the paper).
 */
class TimingModel
{
  public:
    /** A structural timing constraint: op start >= time + weight. */
    struct Constraint
    {
        Cycles time = 0;
        Cycles weight = 0;
        std::uint64_t tag = 0;
    };

    /**
     * @param entry_tag engine tag representing the module entry node.
     * @param start first cycle of execution (1 by convention).
     */
    explicit TimingModel(std::uint64_t entry_tag, Cycles start = 1);

    /** @return the module-local current cycle. */
    Cycles now() const { return now_; }

    /** Model scheduled compute latency: shift the local timeline. */
    void advance(Cycles n) { now_ += n; }

    /**
     * @return the earliest cycle the next op may start, considering program
     * order and (inside a pipeline) the cross-iteration II constraint.
     */
    Cycles earliest() const;

    /**
     * @return a lower bound on the start cycle of EVERY op this module
     * may still commit — not just the next one. Outside pipelines op
     * times are monotone, so the bound is earliest(); inside a
     * pipelined loop the next iteration's leading ops may start
     * retroactively earlier than the current iteration's tail (the
     * elastic-pipeline rule bounds them only by the first slot of the
     * reference iteration plus the initiation interval). Co-simulation
     * uses this floor to know when "the target event has not happened
     * before cycle t" is final (see cosim.cc).
     */
    Cycles retroFloor() const;

    /**
     * Record an op at cycle t (must be >= earliest()) with the given
     * duration. Advances the local timeline to t + dur.
     *
     * @return the structural constraints that bounded this op (program
     * order, and cross-iteration II when pipelined). Dependency constraints
     * the engine computed itself (FIFO, AXI) are not included — the engine
     * already knows them.
     */
    std::vector<Constraint> commitOp(Cycles t, Cycles dur,
                                     std::uint64_t tag);

    /** Enter a pipelined loop with the given initiation interval. */
    void pipelineBegin(std::uint32_t ii);

    /** Start the next loop iteration inside the innermost pipeline. */
    void iterBegin();

    /** Leave the innermost pipelined loop; timeline jumps to drain time. */
    void pipelineEnd();

    /** @return true when inside at least one pipeline scope. */
    bool inPipeline() const { return !pipes_.empty(); }

    /** @return the start cycle of the last committed op (chain anchor). */
    Cycles lastOpTime() const { return prevT_; }

    /** @return the tag of the last committed op (chain anchor). */
    std::uint64_t lastOpTag() const { return prevTag_; }

  private:
    struct Slot
    {
        Cycles t = 0;
        std::uint64_t tag = 0;
    };

    struct Pipe
    {
        std::uint32_t ii = 1;
        Cycles entryNow = 0;
        Cycles entryPrevT = 0;
        std::uint64_t entryPrevTag = 0;
        std::vector<Slot> prevIter;
        std::vector<Slot> curIter;
        std::size_t opIdx = 0;
        std::size_t iterCount = 0;
        Cycles maxEnd = 0;
        Cycles maxEndStart = 0;
        std::uint64_t maxEndTag = 0;
    };

    Cycles now_;
    Cycles prevT_;
    std::uint64_t prevTag_;
    std::vector<Pipe> pipes_;
};

} // namespace omnisim

#endif // OMNISIM_RUNTIME_TIMING_HH
