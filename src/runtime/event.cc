#include "runtime/event.hh"

namespace omnisim
{

const char *
eventKindName(EventKind k)
{
    switch (k) {
      case EventKind::TraceBlock:   return "TraceBlock";
      case EventKind::StartTask:    return "StartTask";
      case EventKind::FifoRead:     return "FifoRead";
      case EventKind::FifoWrite:    return "FifoWrite";
      case EventKind::FifoNbRead:   return "FifoNbRead";
      case EventKind::FifoNbWrite:  return "FifoNbWrite";
      case EventKind::FifoCanRead:  return "FifoCanRead";
      case EventKind::FifoCanWrite: return "FifoCanWrite";
      case EventKind::AxiReadReq:   return "AxiReadReq";
      case EventKind::AxiWriteReq:  return "AxiWriteReq";
      case EventKind::AxiRead:      return "AxiRead";
      case EventKind::AxiWrite:     return "AxiWrite";
      case EventKind::AxiWriteResp: return "AxiWriteResp";
      case EventKind::Advance:      return "Advance";
      case EventKind::TaskEnd:      return "TaskEnd";
    }
    return "Unknown";
}

} // namespace omnisim
