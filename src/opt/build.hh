/**
 * @file
 * Mutable intermediate representation the optimization passes operate
 * on (internal to src/opt/). Original node ids throughout; the final
 * compaction to layout ids happens once, in PassManager::compile().
 */

#ifndef OMNISIM_OPT_BUILD_HH
#define OMNISIM_OPT_BUILD_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "opt/pass_manager.hh"
#include "support/types.hh"

namespace omnisim::opt::detail
{

/** Mutable pass IR: adjacency lists (parallel-edge free, max weight),
 *  per-node fold state, and the kept/pinned decision sets. */
struct Build
{
    const LayoutInput *in = nullptr;
    std::size_t n = 0;

    /** Out/in adjacency. Kept parallel-edge free: inserting an edge
     *  that already exists raises its weight to the max instead. */
    std::vector<std::vector<std::pair<std::uint32_t, Cycles>>> out, rin;
    std::vector<std::uint8_t> alive;
    /** Dedup representative (self when not merged). Chains resolve at
     *  materialization. */
    std::vector<std::uint32_t> mergedInto;
    std::vector<Cycles> seed;
    /** Extended duration: node duration with module tail slack and the
     *  completion of collapsed successors folded in. */
    std::vector<Cycles> dur;
    /** Constant contribution to the total from collapsed nodes. */
    Cycles floor = 0;
    std::size_t liveEdges = 0;
    /** Parallel input edges merged while canonicalizing (attributed to
     *  the first pass's edge eliminations). */
    std::uint64_t canonEdgesRemoved = 0;

    // ---- FIFO access map, original ids ------------------------------
    std::vector<std::int32_t> accFifo;
    std::vector<std::uint32_t> accIdx;
    std::vector<std::uint8_t> accWrite;
    std::vector<std::uint8_t> accBlocking;

    // ---- Decision sets ----------------------------------------------
    /** readKept[f][r-1] / writeKept[f][w-1]: the access entry stays
     *  addressable in the layout (WAR-relevant or a kept-constraint
     *  target). Default: everything kept (identity / -O0). */
    std::vector<std::vector<std::uint8_t>> readKept, writeKept;
    std::vector<std::uint8_t> consKept;
    /** Nodes the passes must not remove. Computed by latticePrune (or
     *  conservatively by pinEverything) before any structural pass. */
    std::vector<std::uint8_t> pinned;

    explicit Build(const LayoutInput &input);

    /** Conservative pin set: tails, every kept access entry's node,
     *  every kept constraint's node. */
    void pinFromKeptSets();

    /** Drop edge u -> v from both adjacency sides. */
    void removeEdge(std::uint32_t u, std::uint32_t v);

    /** Insert edge u -> v (max-merge when it already exists).
     *  @return true when a new edge was created. */
    bool addEdge(std::uint32_t u, std::uint32_t v, Cycles w);
};

// The three -O1 passes (src/opt/passes.cc).
void latticePrune(Build &b, PassStats &st);
void chainCollapse(Build &b, PassStats &st);
void dedup(Build &b, PassStats &st);

} // namespace omnisim::opt::detail

#endif // OMNISIM_OPT_BUILD_HH
