#include "opt/verify.hh"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>

#include "core/omnisim.hh"
#include "graph/simgraph.hh"
#include "obs/log.hh"
#include "opt/partition.hh"
#include "runtime/fifo_table.hh"
#include "support/logging.hh"

namespace omnisim::opt
{

namespace
{

std::atomic<bool> verifyFlag{
#ifdef NDEBUG
    false // Release: opt-in via --verify.
#else
    true // Debug: always-on.
#endif
};

/** Log the structured diagnostic (picked up by the flight recorder
 *  ring) and throw. The bracketed id is the stable handle tests and
 *  humans grep for. */
[[noreturn]] void
failVerify(const VerifyContext &ctx, const char *id,
           const std::string &detail)
{
    OMNISIM_LOG_ERROR("verify.fail", "pass=%s invariant=%s %s", ctx.pass,
                      id, detail.c_str());
    omnisim_fatal("IR verifier: [%s] at '%s': %s", id, ctx.pass,
                  detail.c_str());
}

/**
 * Longest-path relaxation over an explicit edge list (Kahn order, so it
 * doubles as the acyclicity oracle). time[v] = max(seed[v],
 * max over in-edges u->v of time[u] + w); parallel edges are harmless
 * (max over all).
 * @return false when the graph has a cycle (times undefined).
 */
bool
longestPath(std::size_t n, const std::vector<Cycles> &seed,
            const std::vector<CsrGraph::EdgeSpec> &edges,
            std::vector<Cycles> &time)
{
    std::vector<std::uint32_t> indeg(n, 0);
    std::vector<std::vector<std::pair<std::uint32_t, Cycles>>> out(n);
    for (const auto &e : edges) {
        out[static_cast<std::size_t>(e.src)].push_back(
            {static_cast<std::uint32_t>(e.dst), e.weight});
        ++indeg[static_cast<std::size_t>(e.dst)];
    }
    time = seed;
    std::vector<std::uint32_t> ready;
    ready.reserve(n);
    for (std::size_t v = 0; v < n; ++v)
        if (indeg[v] == 0)
            ready.push_back(static_cast<std::uint32_t>(v));
    std::size_t done = 0;
    while (done < ready.size()) {
        const std::uint32_t u = ready[done++];
        for (const auto &[v, w] : out[u]) {
            time[v] = std::max(time[v], time[u] + w);
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    return done == n;
}

void
checkShape(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    if (lay.seed.size() != n || lay.dur.size() != n)
        failVerify(ctx, "shape",
                   strf("%zu seeds / %zu durations for %zu nodes",
                        lay.seed.size(), lay.dur.size(), n));
    if (lay.accFifo.size() != n || lay.accIdx.size() != n ||
        lay.accWrite.size() != n || lay.accBlockingWrite.size() != n)
        failVerify(ctx, "shape",
                   strf("accessor arrays sized %zu/%zu/%zu/%zu for %zu "
                        "nodes",
                        lay.accFifo.size(), lay.accIdx.size(),
                        lay.accWrite.size(), lay.accBlockingWrite.size(),
                        n));
}

void
checkCsrSorted(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    for (std::size_t i = 0; i < lay.edges.size(); ++i) {
        const auto &e = lay.edges[i];
        if (e.src >= n || e.dst >= n)
            failVerify(ctx, "csr-sorted",
                       strf("edge %llu -> %llu outside %zu nodes",
                            static_cast<unsigned long long>(e.src),
                            static_cast<unsigned long long>(e.dst), n));
        if (i > 0) {
            const auto &p = lay.edges[i - 1];
            if (p.src > e.src || (p.src == e.src && p.dst >= e.dst))
                failVerify(
                    ctx, "csr-sorted",
                    strf("edge %zu (%llu -> %llu) not strictly after "
                         "edge %zu (%llu -> %llu)",
                         i, static_cast<unsigned long long>(e.src),
                         static_cast<unsigned long long>(e.dst), i - 1,
                         static_cast<unsigned long long>(p.src),
                         static_cast<unsigned long long>(p.dst)));
        }
    }
}

void
checkRemap(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    // Materialization assigns dense ids to live nodes in ascending
    // original id and remaps merged nodes to representatives with
    // *smaller* original ids. So walking the remap table in original-id
    // order, the first occurrences of layout ids must be exactly
    // 0, 1, 2, ... — which also proves surjectivity (every layout node
    // has a preimage) and catches collisions (a lost preimage).
    std::vector<std::uint8_t> seen(n, 0);
    std::uint32_t next = 0;
    for (std::size_t v = 0; v < lay.remap.size(); ++v) {
        const std::uint32_t d = lay.remap[v];
        if (d == kDropped)
            continue;
        if (d >= n)
            failVerify(ctx, "remap-bijective",
                       strf("remap[%zu] = %u outside %zu layout nodes",
                            v, d, n));
        if (!seen[d]) {
            if (d != next)
                failVerify(ctx, "remap-bijective",
                           strf("first preimage of layout node %u "
                                "appears before layout node %u has one "
                                "(original node %zu)",
                                d, next, v));
            seen[d] = 1;
            ++next;
        }
    }
    if (next != n)
        failVerify(ctx, "remap-bijective",
                   strf("%u of %zu layout nodes have a preimage", next,
                        n));
}

void
checkFifos(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        const FifoLayout &fl = lay.fifos[f];
        if (fl.cap != fl.writeNode.size() + 1)
            failVerify(ctx, "fifo-cap",
                       strf("fifo %zu cap %u != writes %zu + 1", f,
                            fl.cap, fl.writeNode.size()));
        for (const std::uint32_t v : fl.readNode)
            if (v != kNoNode && v >= n)
                failVerify(ctx, "fifo-cap",
                           strf("fifo %zu read entry %u outside %zu "
                                "layout nodes", f, v, n));
        for (const std::uint32_t v : fl.writeNode)
            if (v != kNoNode && v >= n)
                failVerify(ctx, "fifo-cap",
                           strf("fifo %zu write entry %u outside %zu "
                                "layout nodes", f, v, n));
    }
}

void
checkAccessMaps(const RunLayout &lay, const VerifyContext &ctx)
{
    // fifos[] and the O(1) accessor arrays are two views of one map;
    // walk the forward direction and mark what we covered, then demand
    // the reverse direction points at nothing else.
    const std::size_t n = lay.numNodes;
    std::vector<std::uint8_t> covered(n, 0);
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        const FifoLayout &fl = lay.fifos[f];
        std::uint32_t blocking = 0;
        for (std::size_t w = 0; w < fl.writeNode.size(); ++w) {
            const std::uint32_t v = fl.writeNode[w];
            if (v == kNoNode)
                continue;
            if (lay.accFifo[v] != static_cast<std::int32_t>(f) ||
                lay.accIdx[v] != w + 1 || !lay.accWrite[v])
                failVerify(ctx, "acc-map-consistent",
                           strf("write entry %zu of fifo %zu (node %u) "
                                "disagrees with the accessor arrays",
                                w + 1, f, v));
            covered[v] = 1;
            blocking += lay.accBlockingWrite[v] ? 1 : 0;
        }
        for (std::size_t r = 0; r < fl.readNode.size(); ++r) {
            const std::uint32_t v = fl.readNode[r];
            if (v == kNoNode)
                continue;
            if (lay.accFifo[v] != static_cast<std::int32_t>(f) ||
                lay.accIdx[v] != r + 1 || lay.accWrite[v])
                failVerify(ctx, "acc-map-consistent",
                           strf("read entry %zu of fifo %zu (node %u) "
                                "disagrees with the accessor arrays",
                                r + 1, f, v));
            if (lay.accBlockingWrite[v])
                failVerify(ctx, "acc-map-consistent",
                           strf("read node %u flagged as blocking "
                                "write", v));
            covered[v] = 1;
        }
        if (blocking != fl.blockingWrites)
            failVerify(ctx, "acc-map-consistent",
                       strf("fifo %zu records %u blocking writes, "
                            "entries say %u", f, fl.blockingWrites,
                            blocking));
    }
    for (std::size_t v = 0; v < n; ++v) {
        if (lay.accFifo[v] >= 0 && !covered[v])
            failVerify(ctx, "acc-map-consistent",
                       strf("node %zu claims fifo %d access %u but no "
                            "access entry references it", v,
                            lay.accFifo[v], lay.accIdx[v]));
        if (lay.accFifo[v] < 0 &&
            (lay.accIdx[v] != 0 || lay.accWrite[v] ||
             lay.accBlockingWrite[v]))
            failVerify(ctx, "acc-map-consistent",
                       strf("non-access node %zu carries accessor "
                            "state", v));
    }
}

void
checkCons(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    std::vector<std::uint32_t> maxWriteConsIdx(lay.fifos.size(), 0);
    bool first = true;
    std::uint32_t prevOrig = 0;
    for (const LayoutCons &c : lay.cons) {
        if (!first && c.origIndex <= prevOrig)
            failVerify(ctx, "cons-addressable",
                       strf("kept constraint %u out of recorded order "
                            "(follows %u)", c.origIndex, prevOrig));
        first = false;
        prevOrig = c.origIndex;
        if (ctx.input != nullptr &&
            c.origIndex >= ctx.input->constraints->size())
            failVerify(ctx, "cons-addressable",
                       strf("kept constraint %u of %zu recorded",
                            c.origIndex,
                            ctx.input->constraints->size()));
        if (c.node >= n)
            failVerify(ctx, "cons-addressable",
                       strf("constraint %u query node %u outside %zu "
                            "layout nodes", c.origIndex, c.node, n));
        if (c.fifo >= lay.fifos.size())
            failVerify(ctx, "cons-addressable",
                       strf("constraint %u names fifo %u of %zu",
                            c.origIndex, c.fifo, lay.fifos.size()));
        if (!isQueryKind(c.kind))
            failVerify(ctx, "cons-addressable",
                       strf("constraint %u kind '%s' is not a query",
                            c.origIndex, eventKindName(c.kind)));
        if (c.index < 1)
            failVerify(ctx, "cons-addressable",
                       strf("constraint %u access index 0 (1-based)",
                            c.origIndex));
        const FifoLayout &fl = lay.fifos[c.fifo];
        switch (c.kind) {
          case EventKind::FifoNbRead:
          case EventKind::FifoCanRead:
            // A read-kind query of index w evaluates the w-th write.
            if (c.index <= fl.writeNode.size() &&
                fl.writeNode[c.index - 1] == kNoNode)
                failVerify(ctx, "cons-addressable",
                           strf("read query %u lost its target write "
                                "entry %u of fifo %u", c.origIndex,
                                c.index, c.fifo));
            break;
          default:
            // Write-kind queries slide over the read prefix with the
            // depth; collect the per-FIFO maximum and check below.
            maxWriteConsIdx[c.fifo] =
                std::max(maxWriteConsIdx[c.fifo], c.index);
            break;
        }
    }
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        if (maxWriteConsIdx[f] < 2)
            continue;
        const FifoLayout &fl = lay.fifos[f];
        const std::size_t lim = std::min<std::size_t>(
            maxWriteConsIdx[f] - 1, fl.readNode.size());
        for (std::size_t r = 0; r < lim; ++r)
            if (fl.readNode[r] == kNoNode)
                failVerify(ctx, "cons-addressable",
                           strf("write query target read entry %zu of "
                                "fifo %zu was dropped", r + 1, f));
    }
}

/** [chain-weight]: at the structural-only point of the lattice (== the
 *  all-caps clamped depth vector, where no WAR edge exists) the passes
 *  must preserve every live-image original node's time exactly, and the
 *  re-finalized total with the floor folded in. */
void
checkChainWeight(const RunLayout &lay, const std::vector<Cycles> &timeL,
                 const VerifyContext &ctx)
{
    const LayoutInput &in = *ctx.input;
    const std::size_t n0 = in.nodes->size();

    std::vector<Cycles> durO(n0);
    for (std::size_t v = 0; v < n0; ++v)
        durO[v] = (*in.nodes)[v].duration;
    // Fold module tail slack exactly as the pass IR constructor does:
    // the re-finalized total is max(time + dur, time[tail] + slack).
    for (std::size_t m = 0; m < in.tailNode->size(); ++m) {
        const std::uint64_t t = (*in.tailNode)[m];
        durO[t] = std::max(durO[t], (*in.tailSlack)[m]);
    }

    std::vector<Cycles> timeO;
    if (!longestPath(n0, *in.seed, *in.edges, timeO))
        failVerify(ctx, "chain-weight",
                   "original structural graph is cyclic");

    for (std::size_t v = 0; v < n0; ++v) {
        const std::uint32_t d = lay.remap[v];
        if (d == kDropped)
            continue;
        if (timeL[d] != timeO[v])
            failVerify(
                ctx, "chain-weight",
                strf("node time not conserved: original %zu is %llu, "
                     "layout image %u is %llu", v,
                     static_cast<unsigned long long>(timeO[v]), d,
                     static_cast<unsigned long long>(timeL[d])));
    }

    Cycles totO = 0;
    for (std::size_t v = 0; v < n0; ++v)
        totO = std::max(totO, timeO[v] + durO[v]);
    Cycles totL = lay.floor;
    for (std::size_t d = 0; d < lay.numNodes; ++d)
        totL = std::max(totL, timeL[d] + lay.dur[d]);
    if (totO != totL)
        failVerify(ctx, "chain-weight",
                   strf("total not conserved: original %llu, layout "
                        "%llu (floor %llu)",
                        static_cast<unsigned long long>(totO),
                        static_cast<unsigned long long>(totL),
                        static_cast<unsigned long long>(lay.floor)));
}

/** [dedup-fixpoint]: after dedup no two live unpinned layout nodes may
 *  share (seed, canonical in-edge list) — they would have merged. The
 *  pinned set in layout terms (access entries, kept-constraint nodes,
 *  module tail images) mirrors the pass IR's pin computation. */
void
checkDedupFixpoint(const RunLayout &lay, const VerifyContext &ctx)
{
    const std::size_t n = lay.numNodes;
    std::vector<std::uint8_t> pinned(n, 0);
    for (std::size_t v = 0; v < n; ++v)
        if (lay.accFifo[v] >= 0)
            pinned[v] = 1;
    for (const LayoutCons &c : lay.cons)
        pinned[c.node] = 1;
    for (const std::uint64_t t : *ctx.input->tailNode) {
        const std::uint32_t d = lay.remap[t];
        if (d != kDropped)
            pinned[d] = 1;
    }

    // Edges are sorted by (src, dst), so per-node in-lists built in one
    // sweep are already canonical (ascending src, parallel-edge free).
    std::vector<std::vector<std::pair<std::uint32_t, Cycles>>> rin(n);
    for (const auto &e : lay.edges)
        rin[static_cast<std::size_t>(e.dst)].push_back(
            {static_cast<std::uint32_t>(e.src), e.weight});

    std::vector<std::uint32_t> cands;
    for (std::size_t v = 0; v < n; ++v)
        if (!pinned[v])
            cands.push_back(static_cast<std::uint32_t>(v));
    std::sort(cands.begin(), cands.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  if (lay.seed[a] != lay.seed[b])
                      return lay.seed[a] < lay.seed[b];
                  return rin[a] < rin[b];
              });
    for (std::size_t i = 1; i < cands.size(); ++i) {
        const std::uint32_t a = cands[i - 1], b = cands[i];
        if (lay.seed[a] == lay.seed[b] && rin[a] == rin[b])
            failVerify(ctx, "dedup-fixpoint",
                       strf("nodes %u and %u share seed and in-edges "
                            "but were not merged", a, b));
    }
}

} // namespace

void
setVerifyEnabled(bool on)
{
    verifyFlag.store(on, std::memory_order_relaxed);
}

bool
verifyEnabled()
{
    return verifyFlag.load(std::memory_order_relaxed);
}

void
verifyLayout(const RunLayout &lay, const VerifyContext &ctx)
{
    checkShape(lay, ctx);
    checkCsrSorted(lay, ctx);

    std::vector<Cycles> timeL;
    if (!longestPath(lay.numNodes, lay.seed, lay.edges, timeL))
        failVerify(ctx, "dag", "structural layout graph has a cycle");

    checkRemap(lay, ctx);
    checkFifos(lay, ctx);
    checkAccessMaps(lay, ctx);
    checkCons(lay, ctx);
    if (ctx.input != nullptr) {
        checkChainWeight(lay, timeL, ctx);
        if (ctx.afterDedup)
            checkDedupFixpoint(lay, ctx);
    }
}

void
verifyPartitionPlan(const RunLayout &lay,
                    const std::vector<std::uint32_t> &baseDepths,
                    const VerifyContext &ctx)
{
    const PartitionPlan &p = lay.part;
    if (!p.valid) {
        if (!p.order.empty() || !p.levelOffsets.empty() ||
            !p.coneOffsets.empty() || !p.minSafeDepth.empty())
            failVerify(ctx, "plan-shape",
                       "serial (invalid) plan carries level data");
        return;
    }
    const std::size_t n = lay.numNodes;
    if (p.order.size() != n)
        failVerify(ctx, "plan-shape",
                   strf("order covers %zu of %zu nodes", p.order.size(),
                        n));
    const auto checkOffsets = [&](const std::vector<std::uint32_t> &off,
                                  const char *what) {
        if (off.empty() || off.front() != 0 || off.back() != n)
            failVerify(ctx, "plan-shape",
                       strf("%s offsets do not span the order", what));
        for (std::size_t i = 1; i < off.size(); ++i)
            if (off[i] < off[i - 1])
                failVerify(ctx, "plan-shape",
                           strf("%s offsets decrease at %zu", what, i));
    };
    checkOffsets(p.levelOffsets, "level");
    checkOffsets(p.coneOffsets, "cone");
    for (std::size_t l = 0, c = 0; l < p.levelOffsets.size(); ++l) {
        while (c < p.coneOffsets.size() &&
               p.coneOffsets[c] < p.levelOffsets[l])
            ++c;
        if (c >= p.coneOffsets.size() ||
            p.coneOffsets[c] != p.levelOffsets[l])
            failVerify(ctx, "plan-shape",
                       strf("cone offsets do not refine level boundary "
                            "%zu", l));
    }

    std::vector<std::uint32_t> levelOf(n, 0);
    std::vector<std::uint8_t> seen(n, 0);
    std::uint32_t maxWidth = 0;
    for (std::size_t l = 0; l + 1 < p.levelOffsets.size(); ++l) {
        maxWidth = std::max(maxWidth,
                            p.levelOffsets[l + 1] - p.levelOffsets[l]);
        for (std::uint32_t i = p.levelOffsets[l];
             i < p.levelOffsets[l + 1]; ++i) {
            const std::uint32_t v = p.order[i];
            if (v >= n || seen[v])
                failVerify(ctx, "plan-shape",
                           strf("order is not a permutation (position "
                                "%u, node %u)", i, v));
            seen[v] = 1;
            levelOf[v] = static_cast<std::uint32_t>(l);
        }
    }
    if (maxWidth != p.maxLevelWidth)
        failVerify(ctx, "plan-shape",
                   strf("level width %u recorded as %u", maxWidth,
                        p.maxLevelWidth));

    // [level-monotone]: every ordering edge — structural plus the WAR
    // overlay at the clamped baseline depths — must climb strictly.
    for (const auto &e : lay.edges)
        if (levelOf[e.src] >= levelOf[e.dst])
            failVerify(ctx, "level-monotone",
                       strf("structural edge %llu -> %llu does not "
                            "climb (levels %u >= %u)",
                            static_cast<unsigned long long>(e.src),
                            static_cast<unsigned long long>(e.dst),
                            levelOf[e.src], levelOf[e.dst]));
    if (baseDepths.size() != lay.fifos.size())
        failVerify(ctx, "plan-shape",
                   strf("%zu baseline depths for %zu fifos",
                        baseDepths.size(), lay.fifos.size()));
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        const FifoLayout &fl = lay.fifos[f];
        const std::size_t s = std::min(baseDepths[f], fl.cap);
        const std::size_t nr = fl.readNode.size();
        for (std::size_t i = s; i < fl.writeNode.size(); ++i) {
            if (i - s >= nr)
                break;
            const std::uint32_t rn = fl.readNode[i - s];
            if (rn == kNoNode)
                continue;
            const std::uint32_t wn = fl.writeNode[i];
            if (wn == kNoNode || !lay.accBlockingWrite[wn])
                continue;
            if (levelOf[rn] >= levelOf[wn])
                failVerify(ctx, "level-monotone",
                           strf("WAR edge read %zu -> write %zu of "
                                "fifo %zu does not climb (levels %u >= "
                                "%u)", i - s + 1, i + 1, f, levelOf[rn],
                                levelOf[wn]));
        }
    }

    if (p.minSafeDepth.size() != lay.fifos.size())
        failVerify(ctx, "threshold-admissible",
                   strf("%zu depth thresholds for %zu fifos",
                        p.minSafeDepth.size(), lay.fifos.size()));
    const std::vector<std::uint32_t> want = minSafeDepths(lay, levelOf);
    for (std::size_t f = 0; f < want.size(); ++f)
        if (want[f] != p.minSafeDepth[f])
            failVerify(ctx, "threshold-admissible",
                       strf("fifo %zu threshold %u, levels imply %u", f,
                            p.minSafeDepth[f], want[f]));

    std::vector<std::uint32_t> coneOf(n, 0);
    for (std::size_t c = 0; c + 1 < p.coneOffsets.size(); ++c)
        for (std::uint32_t i = p.coneOffsets[c];
             i < p.coneOffsets[c + 1]; ++i)
            coneOf[p.order[i]] = static_cast<std::uint32_t>(c);
    std::uint64_t frontier = 0;
    for (const auto &e : lay.edges)
        if (coneOf[e.src] != coneOf[e.dst])
            ++frontier;
    if (frontier != p.frontierEdges)
        failVerify(ctx, "plan-frontier",
                   strf("%llu cross-cone edges recorded as %llu",
                        static_cast<unsigned long long>(frontier),
                        static_cast<unsigned long long>(
                            p.frontierEdges)));
}

} // namespace omnisim::opt
