/**
 * @file
 * PassManager: the graph compilation pipeline that runs between a
 * finished trace and CompiledRun.
 *
 * At -O1 three passes run, in this order:
 *
 *  1. "lattice-prune" — interval analysis over the *entire* candidate
 *     depth lattice. For every node it computes a lower bound LB (the
 *     structural-only longest path: WAR edges only ever delay nodes)
 *     and an upper bound UB (longest path over the union WAR overlay,
 *     where every blocking write is gated behind *all* earlier reads of
 *     its FIFO — a superset of the overlay at any depth). Any WAR edge
 *     with UB[read]+1 <= LB[write] can never bind at any depth, so the
 *     endpoints need not stay addressable; any recorded constraint whose
 *     outcome is provably constant across the lattice (and equal to the
 *     recorded outcome) can never flip and is dropped. If the union
 *     overlay is cyclic the analysis conservatively keeps everything.
 *  2. "chain-collapse" — unpinned nodes with in/out degree <= 1 are
 *     folded away: pass-through nodes become weighted interval edges,
 *     sources push their start into successors' seeds, sinks fold their
 *     completion into predecessors' durations, and isolated nodes fold
 *     into the constant floor. Exact for both node times of survivors
 *     and the re-finalized total.
 *  3. "dedup" — structurally identical siblings (equal seed and equal
 *     canonical in-edge set) among unpinned nodes are merged via a
 *     remap table; equal in-edges imply equal times at every depth, so
 *     the merge is exact. Runs to a fixed point so identical
 *     loop-iteration subgraphs collapse level by level.
 *
 * Pinned (never removed): module tail anchors, kept FIFO access
 * entries' nodes, and every node a kept constraint references.
 */

#ifndef OMNISIM_OPT_PASS_MANAGER_HH
#define OMNISIM_OPT_PASS_MANAGER_HH

#include <cstdint>
#include <vector>

#include "graph/csr.hh"
#include "graph/simgraph.hh"
#include "opt/layout.hh"
#include "opt/opt.hh"
#include "support/types.hh"

namespace omnisim
{
struct QueryRecord; // core/omnisim.hh
class FifoTable;    // runtime/fifo_table.hh
} // namespace omnisim

namespace omnisim::opt
{

/** Borrowed views of a finished run (all must outlive compile()). */
struct LayoutInput
{
    const std::vector<NodeInfo> *nodes = nullptr;
    const std::vector<CsrGraph::EdgeSpec> *edges = nullptr;
    const std::vector<Cycles> *seed = nullptr;
    const std::vector<FifoTable> *tables = nullptr;
    const std::vector<std::uint32_t> *depths = nullptr;
    const std::vector<QueryRecord> *constraints = nullptr;
    const std::vector<std::uint64_t> *tailNode = nullptr;
    const std::vector<Cycles> *tailSlack = nullptr;
};

class PassManager
{
  public:
    explicit PassManager(OptLevel level) : level_(level) {}

    /** Names of the passes this level runs, in order. */
    std::vector<const char *> passNames() const;

    /** Compile a finished run into a RunLayout. Deterministic: the same
     *  input always produces the same layout byte for byte, which is
     *  what keeps a rehydrated store run bit-identical to the engine
     *  that froze it. */
    RunLayout compile(const LayoutInput &in) const;

  private:
    OptLevel level_;
};

} // namespace omnisim::opt

#endif // OMNISIM_OPT_PASS_MANAGER_HH
