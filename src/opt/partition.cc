#include "opt/partition.hh"

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "obs/metrics.hh"

namespace omnisim::opt
{

namespace
{

/** Append the WAR overlay at the clamped baseline depths (read i-s ->
 *  write i per FIFO, blocking live writes only) to the structural
 *  out-lists, mirroring the engine's OverlayView edge predicate. */
void
appendWarOverlay(const RunLayout &lay,
                 const std::vector<std::uint32_t> &clamped,
                 std::vector<std::pair<std::uint32_t, std::uint32_t>> &es)
{
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        const FifoLayout &fl = lay.fifos[f];
        const std::size_t s = clamped[f];
        const std::size_t nr = fl.readNode.size();
        for (std::size_t i = s; i < fl.writeNode.size(); ++i) {
            if (i - s >= nr)
                break;
            const std::uint32_t rn = fl.readNode[i - s];
            if (rn == kNoNode)
                continue;
            const std::uint32_t wn = fl.writeNode[i];
            if (wn == kNoNode || !lay.accBlockingWrite[wn])
                continue;
            es.push_back({rn, wn});
        }
    }
}

} // namespace

std::vector<std::uint32_t>
minSafeDepths(const RunLayout &lay, const std::vector<std::uint32_t> &level)
{
    std::vector<std::uint32_t> ms(lay.fifos.size(), 1);
    std::vector<std::uint64_t> prefix;
    for (std::size_t f = 0; f < lay.fifos.size(); ++f) {
        const FifoLayout &fl = lay.fifos[f];
        const std::size_t nr = fl.readNode.size();
        // prefix[r] = 1 + max level among live reads at positions <= r
        // (0 when none yet) — nondecreasing, so the first position that
        // reaches a write's level is a lower_bound.
        prefix.assign(nr, 0);
        std::uint64_t run = 0;
        for (std::size_t r = 0; r < nr; ++r) {
            if (fl.readNode[r] != kNoNode)
                run = std::max(
                    run,
                    static_cast<std::uint64_t>(level[fl.readNode[r]]) + 1);
            prefix[r] = run;
        }
        std::uint32_t need = 1;
        for (std::size_t i = 0; i < fl.writeNode.size(); ++i) {
            const std::uint32_t wn = fl.writeNode[i];
            if (wn == kNoNode || !lay.accBlockingWrite[wn])
                continue;
            // First read position whose prefix max reaches this write's
            // level; a WAR source at or past it would not climb levels,
            // so the depth must keep the source strictly before it.
            const std::uint64_t L = level[wn];
            const auto it =
                std::lower_bound(prefix.begin(), prefix.end(), L + 1);
            if (it == prefix.end())
                continue; // every read sits strictly below this write
            const auto r0 =
                static_cast<std::size_t>(it - prefix.begin());
            if (i >= r0) // need i - s < r0, i.e. s >= i - r0 + 1
                need = std::max(
                    need, static_cast<std::uint32_t>(i - r0 + 1));
        }
        ms[f] = need;
    }
    return ms;
}

PartitionPlan
buildPartitionPlan(const RunLayout &lay,
                   const std::vector<std::uint32_t> &baseDepths,
                   std::uint32_t coneGrain)
{
    static obs::Counter &mValid =
        obs::Registry::global().counter("relax.partition.valid");
    static obs::Counter &mFallback =
        obs::Registry::global().counter("relax.partition.serial_fallback");
    static obs::Counter &mCones =
        obs::Registry::global().counter("relax.partition.cones");
    static obs::Counter &mFrontier =
        obs::Registry::global().counter("relax.partition.frontier_edges");
    static obs::Histogram &mLevelWidth =
        obs::Registry::global().histogram("relax.level_width");

    PartitionPlan plan;
    if (coneGrain == 0)
        coneGrain = 1;
    if (baseDepths.size() != lay.fifos.size()) {
        mFallback.add();
        return plan; // malformed input: decline rather than misorder
    }
    std::vector<std::uint32_t> clamped(baseDepths.size());
    for (std::size_t f = 0; f < baseDepths.size(); ++f)
        clamped[f] = std::min(baseDepths[f], lay.fifos[f].cap);

    const std::size_t n = lay.numNodes;
    if (n == 0) {
        plan.valid = true;
        plan.levelOffsets = {0};
        plan.coneOffsets = {0};
        plan.minSafeDepth.assign(lay.fifos.size(), 1);
        mValid.add();
        return plan;
    }

    // Combined edge list: structural + the WAR overlay at the clamped
    // baseline depths. Using the baseline (not depth 1) keeps the
    // levelization acyclic exactly when the baseline run was feasible;
    // which other depth vectors the resulting levels can order is
    // derived afterwards as per-FIFO minimum admissible depths.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> es;
    es.reserve(lay.edges.size() + 16);
    for (const auto &e : lay.edges)
        es.push_back({static_cast<std::uint32_t>(e.src),
                      static_cast<std::uint32_t>(e.dst)});
    appendWarOverlay(lay, clamped, es);

    // CSR out-lists + in-degrees.
    std::vector<std::uint32_t> outOff(n + 1, 0), indeg(n, 0);
    for (const auto &[u, v] : es) {
        ++outOff[u + 1];
        ++indeg[v];
    }
    for (std::size_t v = 0; v < n; ++v)
        outOff[v + 1] += outOff[v];
    std::vector<std::uint32_t> outDst(es.size());
    {
        std::vector<std::uint32_t> cur(outOff.begin(), outOff.end() - 1);
        for (const auto &[u, v] : es)
            outDst[cur[u]++] = v;
    }

    // Kahn longest-path levelization: level[v] = 1 + max over in-edges.
    std::vector<std::uint32_t> level(n, 0);
    std::vector<std::uint32_t> ready;
    ready.reserve(n);
    for (std::size_t v = 0; v < n; ++v)
        if (indeg[v] == 0)
            ready.push_back(static_cast<std::uint32_t>(v));
    std::size_t processed = 0;
    std::uint32_t numLevels = 0;
    while (!ready.empty()) {
        const std::uint32_t u = ready.back();
        ready.pop_back();
        ++processed;
        numLevels = std::max(numLevels, level[u] + 1);
        for (std::uint32_t i = outOff[u]; i < outOff[u + 1]; ++i) {
            const std::uint32_t v = outDst[i];
            level[v] = std::max(level[v], level[u] + 1);
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    if (processed != n) {
        // Baseline overlay is cyclic: the baseline itself decides how
        // to report that; the plan just declines to parallelize.
        mFallback.add();
        return plan;
    }

    // Depth admission thresholds: the smallest clamped depth per FIFO
    // at which every live blocking write still sits strictly above the
    // reads that could source its WAR edge. Probes below a threshold
    // simply take the serial paths (PartitionPlan::admits).
    plan.minSafeDepth = minSafeDepths(lay, level);

    // Bucket nodes by level; ascending id within a level (determinism:
    // the commit order at each barrier is the plan order).
    plan.levelOffsets.assign(numLevels + 1, 0);
    for (std::size_t v = 0; v < n; ++v)
        ++plan.levelOffsets[level[v] + 1];
    for (std::uint32_t l = 0; l < numLevels; ++l)
        plan.levelOffsets[l + 1] += plan.levelOffsets[l];
    plan.order.resize(n);
    {
        std::vector<std::uint32_t> cur(plan.levelOffsets.begin(),
                                       plan.levelOffsets.end() - 1);
        for (std::size_t v = 0; v < n; ++v)
            plan.order[cur[level[v]]++] = static_cast<std::uint32_t>(v);
    }

    // Split each level into balanced cones of at most coneGrain nodes.
    std::vector<std::uint32_t> coneOf(n, 0);
    plan.coneOffsets.push_back(0);
    for (std::uint32_t l = 0; l < numLevels; ++l) {
        const std::uint32_t b = plan.levelOffsets[l];
        const std::uint32_t e = plan.levelOffsets[l + 1];
        const std::uint32_t width = e - b;
        plan.maxLevelWidth = std::max(plan.maxLevelWidth, width);
        mLevelWidth.record(width);
        const std::uint32_t nCones = (width + coneGrain - 1) / coneGrain;
        const std::uint32_t base = nCones ? width / nCones : 0;
        const std::uint32_t rem = nCones ? width % nCones : 0;
        std::uint32_t pos = b;
        for (std::uint32_t c = 0; c < nCones; ++c) {
            const std::uint32_t sz = base + (c < rem ? 1 : 0);
            const std::uint32_t cone =
                static_cast<std::uint32_t>(plan.coneOffsets.size()) - 1;
            for (std::uint32_t i = pos; i < pos + sz; ++i)
                coneOf[plan.order[i]] = cone;
            pos += sz;
            plan.coneOffsets.push_back(pos);
        }
    }

    for (const auto &e : lay.edges)
        if (coneOf[e.src] != coneOf[e.dst])
            ++plan.frontierEdges;

    plan.valid = true;
    mValid.add();
    mCones.add(plan.cones());
    mFrontier.add(plan.frontierEdges);
    return plan;
}

} // namespace omnisim::opt
