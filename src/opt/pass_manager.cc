#include "opt/pass_manager.hh"

#include <algorithm>

#include "core/omnisim.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "opt/build.hh"
#include "opt/partition.hh"
#include "opt/verify.hh"
#include "runtime/fifo_table.hh"
#include "support/logging.hh"

namespace omnisim::opt
{

const char *
optLevelName(OptLevel level)
{
    return level == OptLevel::O1 ? "O1" : "O0";
}

void
CompileStats::accumulate(const CompileStats &other)
{
    origNodes += other.origNodes;
    origEdges += other.origEdges;
    optNodes += other.optNodes;
    optEdges += other.optEdges;
    origConstraints += other.origConstraints;
    keptConstraints += other.keptConstraints;
    for (const PassStats &ps : other.passes) {
        auto it = std::find_if(passes.begin(), passes.end(),
                               [&](const PassStats &mine) {
                                   return mine.pass == ps.pass;
                               });
        if (it == passes.end()) {
            passes.push_back(ps);
        } else {
            it->nodesEliminated += ps.nodesEliminated;
            it->edgesEliminated += ps.edgesEliminated;
            it->constraintsEliminated += ps.constraintsEliminated;
        }
    }
}

void
RunLayout::rebuildAccessMaps(
    const std::vector<std::vector<std::uint8_t>> &writeBlocking)
{
    accFifo.assign(numNodes, -1);
    accIdx.assign(numNodes, 0);
    accWrite.assign(numNodes, 0);
    accBlockingWrite.assign(numNodes, 0);
    for (std::size_t f = 0; f < fifos.size(); ++f) {
        FifoLayout &fl = fifos[f];
        fl.cap = static_cast<std::uint32_t>(fl.writeNode.size()) + 1;
        fl.blockingWrites = 0;
        for (std::size_t w = 0; w < fl.writeNode.size(); ++w) {
            const std::uint32_t v = fl.writeNode[w];
            if (v == kNoNode)
                continue;
            accFifo[v] = static_cast<std::int32_t>(f);
            accIdx[v] = static_cast<std::uint32_t>(w + 1);
            accWrite[v] = 1;
            if (writeBlocking[f][w]) {
                accBlockingWrite[v] = 1;
                ++fl.blockingWrites;
            }
        }
        for (std::size_t r = 0; r < fl.readNode.size(); ++r) {
            const std::uint32_t v = fl.readNode[r];
            if (v == kNoNode)
                continue;
            accFifo[v] = static_cast<std::int32_t>(f);
            accIdx[v] = static_cast<std::uint32_t>(r + 1);
            accWrite[v] = 0;
        }
    }
}

namespace detail
{

Build::Build(const LayoutInput &input) : in(&input)
{
    n = input.nodes->size();
    seed = *input.seed;
    dur.resize(n);
    for (std::size_t v = 0; v < n; ++v)
        dur[v] = (*input.nodes)[v].duration;
    // Fold module tail slack into the tail anchors' extended durations:
    // the re-finalized total is max(time + dur, time[tail] + slack), and
    // both terms share the node's time.
    for (std::size_t m = 0; m < input.tailNode->size(); ++m) {
        const std::uint64_t t = (*input.tailNode)[m];
        dur[t] = std::max(dur[t], (*input.tailSlack)[m]);
    }

    alive.assign(n, 1);
    mergedInto.resize(n);
    for (std::size_t v = 0; v < n; ++v)
        mergedInto[v] = static_cast<std::uint32_t>(v);

    // Canonical adjacency: one edge per (src, dst), max weight.
    out.resize(n);
    rin.resize(n);
    for (const auto &e : *input.edges)
        out[e.src].push_back({static_cast<std::uint32_t>(e.dst),
                              e.weight});
    for (std::size_t u = 0; u < n; ++u) {
        auto &lst = out[u];
        std::sort(lst.begin(), lst.end());
        std::size_t keep = 0;
        for (std::size_t i = 0; i < lst.size(); ++i) {
            if (keep > 0 && lst[keep - 1].first == lst[i].first)
                lst[keep - 1].second = lst[i].second; // sorted: max last
            else
                lst[keep++] = lst[i];
        }
        canonEdgesRemoved += lst.size() - keep;
        lst.resize(keep);
        liveEdges += keep;
        for (const auto &[v, w] : lst)
            rin[v].push_back({static_cast<std::uint32_t>(u), w});
    }

    // FIFO access map + default (identity) kept sets.
    const auto &tables = *input.tables;
    accFifo.assign(n, -1);
    accIdx.assign(n, 0);
    accWrite.assign(n, 0);
    accBlocking.assign(n, 0);
    readKept.resize(tables.size());
    writeKept.resize(tables.size());
    for (std::size_t f = 0; f < tables.size(); ++f) {
        const FifoTable &t = tables[f];
        readKept[f].assign(t.reads(), 1);
        writeKept[f].assign(t.writes(), 1);
        for (std::uint32_t i = 1; i <= t.writes(); ++i) {
            const std::uint64_t v = t.writeNodeOf(i);
            accFifo[v] = static_cast<std::int32_t>(f);
            accIdx[v] = i;
            accWrite[v] = 1;
            if ((*input.nodes)[v].kind == EventKind::FifoWrite)
                accBlocking[v] = 1;
        }
        for (std::uint32_t i = 1; i <= t.reads(); ++i) {
            const std::uint64_t v = t.readNodeOf(i);
            accFifo[v] = static_cast<std::int32_t>(f);
            accIdx[v] = i;
            accWrite[v] = 0;
        }
    }
    consKept.assign(input.constraints->size(), 1);
    pinned.assign(n, 0);
}

void
Build::pinFromKeptSets()
{
    pinned.assign(n, 0);
    for (const std::uint64_t t : *in->tailNode)
        pinned[t] = 1;
    const auto &tables = *in->tables;
    for (std::size_t f = 0; f < tables.size(); ++f) {
        const FifoTable &t = tables[f];
        for (std::uint32_t i = 1; i <= t.reads(); ++i)
            if (readKept[f][i - 1])
                pinned[t.readNodeOf(i)] = 1;
        for (std::uint32_t i = 1; i <= t.writes(); ++i)
            if (writeKept[f][i - 1])
                pinned[t.writeNodeOf(i)] = 1;
    }
    const auto &cons = *in->constraints;
    for (std::size_t i = 0; i < cons.size(); ++i)
        if (consKept[i])
            pinned[cons[i].node] = 1;
}

void
Build::removeEdge(std::uint32_t u, std::uint32_t v)
{
    auto &ou = out[u];
    for (std::size_t i = 0; i < ou.size(); ++i) {
        if (ou[i].first == v) {
            ou[i] = ou.back();
            ou.pop_back();
            break;
        }
    }
    auto &iv = rin[v];
    for (std::size_t i = 0; i < iv.size(); ++i) {
        if (iv[i].first == u) {
            iv[i] = iv.back();
            iv.pop_back();
            break;
        }
    }
    --liveEdges;
}

bool
Build::addEdge(std::uint32_t u, std::uint32_t v, Cycles w)
{
    for (auto &[dst, weight] : out[u]) {
        if (dst == v) {
            if (w > weight) {
                weight = w;
                for (auto &[src, win] : rin[v])
                    if (src == u)
                        win = w;
            }
            return false;
        }
    }
    out[u].push_back({v, w});
    rin[v].push_back({u, w});
    ++liveEdges;
    return true;
}

/** Compact a finished Build into layout ids. */
static RunLayout
materialize(Build &b, OptLevel level, std::vector<PassStats> passes)
{
    const LayoutInput &in = *b.in;
    RunLayout lay;
    lay.level = level;

    // Resolve merge chains, then assign dense ids to live nodes in
    // ascending original id (determinism matters: a rehydrated layout
    // must match the one the live engine froze).
    std::vector<std::uint32_t> rep(b.n);
    for (std::size_t v = 0; v < b.n; ++v) {
        std::uint32_t r = static_cast<std::uint32_t>(v);
        while (b.mergedInto[r] != r)
            r = b.mergedInto[r];
        rep[v] = r;
    }
    std::vector<std::uint32_t> denseId(b.n, kDropped);
    std::uint32_t next = 0;
    for (std::size_t v = 0; v < b.n; ++v)
        if (b.alive[v])
            denseId[v] = next++;
    lay.numNodes = next;

    lay.remap.resize(b.n);
    for (std::size_t v = 0; v < b.n; ++v) {
        const std::uint32_t r = rep[v];
        lay.remap[v] = b.alive[r] ? denseId[r] : kDropped;
    }

    lay.seed.resize(next);
    lay.dur.resize(next);
    for (std::size_t v = 0; v < b.n; ++v) {
        if (!b.alive[v])
            continue;
        lay.seed[denseId[v]] = b.seed[v];
        lay.dur[denseId[v]] = b.dur[v];
    }
    lay.floor = b.floor;

    lay.edges.reserve(b.liveEdges);
    for (std::size_t u = 0; u < b.n; ++u) {
        if (!b.alive[u])
            continue;
        for (const auto &[v, w] : b.out[u])
            lay.edges.push_back({denseId[u], denseId[v], w});
    }
    std::sort(lay.edges.begin(), lay.edges.end(),
              [](const CsrGraph::EdgeSpec &a, const CsrGraph::EdgeSpec &e) {
                  return a.src != e.src ? a.src < e.src : a.dst < e.dst;
              });

    const auto &tables = *in.tables;
    lay.fifos.resize(tables.size());
    std::vector<std::vector<std::uint8_t>> writeBlocking(tables.size());
    for (std::size_t f = 0; f < tables.size(); ++f) {
        const FifoTable &t = tables[f];
        FifoLayout &fl = lay.fifos[f];
        fl.readNode.assign(t.reads(), kNoNode);
        fl.writeNode.assign(t.writes(), kNoNode);
        writeBlocking[f].assign(t.writes(), 0);
        for (std::uint32_t i = 1; i <= t.reads(); ++i) {
            if (!b.readKept[f][i - 1])
                continue;
            const std::uint32_t id = lay.remap[t.readNodeOf(i)];
            omnisim_assert(id != kDropped,
                           "kept read entry lost its node");
            fl.readNode[i - 1] = id;
        }
        for (std::uint32_t i = 1; i <= t.writes(); ++i) {
            writeBlocking[f][i - 1] = b.accBlocking[t.writeNodeOf(i)];
            if (!b.writeKept[f][i - 1])
                continue;
            const std::uint32_t id = lay.remap[t.writeNodeOf(i)];
            omnisim_assert(id != kDropped,
                           "kept write entry lost its node");
            fl.writeNode[i - 1] = id;
        }
    }
    lay.rebuildAccessMaps(writeBlocking);

    const auto &cons = *in.constraints;
    for (std::size_t i = 0; i < cons.size(); ++i) {
        if (!b.consKept[i])
            continue;
        const QueryRecord &qr = cons[i];
        LayoutCons lc;
        lc.origIndex = static_cast<std::uint32_t>(i);
        lc.fifo = static_cast<std::uint32_t>(qr.fifo);
        lc.kind = qr.kind;
        lc.index = qr.index;
        const std::uint32_t id = lay.remap[qr.node];
        omnisim_assert(id != kDropped, "kept constraint lost its node");
        lc.node = id;
        lc.outcome = qr.outcome;
        lay.cons.push_back(lc);
    }

    lay.stats.level = level;
    lay.stats.passes = std::move(passes);
    lay.stats.origNodes = b.n;
    lay.stats.origEdges = in.edges->size();
    lay.stats.optNodes = lay.numNodes;
    lay.stats.optEdges = lay.edges.size();
    lay.stats.origConstraints = cons.size();
    lay.stats.keptConstraints = lay.cons.size();
    return lay;
}

} // namespace detail

std::vector<const char *>
PassManager::passNames() const
{
    if (level_ == OptLevel::O0)
        return {};
    return {"lattice-prune", "chain-collapse", "dedup", "partition"};
}

RunLayout
PassManager::compile(const LayoutInput &in) const
{
    static obs::Counter &mCompiles =
        obs::Registry::global().counter("compile.runs");
    static obs::Histogram &mCompileUs =
        obs::Registry::global().histogram("compile.us");
    static obs::Histogram &mLatticePruneUs =
        obs::Registry::global().histogram("compile.pass_us.lattice_prune");
    static obs::Histogram &mChainCollapseUs =
        obs::Registry::global().histogram("compile.pass_us.chain_collapse");
    static obs::Histogram &mDedupUs =
        obs::Registry::global().histogram("compile.pass_us.dedup");
    OMNISIM_SPAN("compile.run");
    obs::ScopedLatencyUs compileTimer(mCompileUs);
    mCompiles.add();

    detail::Build b(in);
    // Between-pass verification: materialize a throwaway copy of the
    // pass IR after each pass and run the full invariant checker on it,
    // so a pass bug is caught at the pass that introduced it instead of
    // surfacing as a downstream divergence. Always-on in Debug, behind
    // --verify in Release (see opt/verify.hh).
    const auto verifyStage = [&](const char *stage, bool afterDedup) {
        if (!verifyEnabled())
            return;
        OMNISIM_SPAN("compile.verify");
        detail::Build copy(b);
        const RunLayout mid = detail::materialize(copy, level_, {});
        VerifyContext ctx;
        ctx.input = &in;
        ctx.pass = stage;
        ctx.afterDedup = afterDedup;
        verifyLayout(mid, ctx);
    };
    std::vector<PassStats> passes;
    if (level_ != OptLevel::O0) {
        {
            OMNISIM_SPAN("compile.lattice_prune");
            obs::ScopedLatencyUs t(mLatticePruneUs);
            passes.emplace_back();
            passes.back().pass = "lattice-prune";
            detail::latticePrune(b, passes.back());
            b.pinFromKeptSets();
        }
        verifyStage("lattice-prune", false);
        {
            OMNISIM_SPAN("compile.chain_collapse");
            obs::ScopedLatencyUs t(mChainCollapseUs);
            passes.emplace_back();
            passes.back().pass = "chain-collapse";
            detail::chainCollapse(b, passes.back());
        }
        verifyStage("chain-collapse", false);
        {
            OMNISIM_SPAN("compile.dedup");
            obs::ScopedLatencyUs t(mDedupUs);
            passes.emplace_back();
            passes.back().pass = "dedup";
            detail::dedup(b, passes.back());
        }
        verifyStage("dedup", true);
    }
    RunLayout lay;
    {
        OMNISIM_SPAN("compile.materialize");
        lay = detail::materialize(b, level_, std::move(passes));
    }
    if (verifyEnabled()) {
        VerifyContext ctx;
        ctx.input = &in;
        ctx.pass = "materialize";
        ctx.afterDedup = level_ != OptLevel::O0;
        verifyLayout(lay, ctx);
    }
    OMNISIM_LOG_DEBUG(
        "compile.done", "level=%s nodes=%llu->%llu constraints=%llu->%llu",
        optLevelName(level_),
        static_cast<unsigned long long>(lay.stats.origNodes),
        static_cast<unsigned long long>(lay.stats.optNodes),
        static_cast<unsigned long long>(lay.stats.origConstraints),
        static_cast<unsigned long long>(lay.stats.keptConstraints));
    if (level_ != OptLevel::O0) {
        static obs::Histogram &mPartitionUs =
            obs::Registry::global().histogram("compile.pass_us.partition");
        OMNISIM_SPAN("compile.partition");
        obs::ScopedLatencyUs t(mPartitionUs);
        lay.part = buildPartitionPlan(lay, *in.depths);
        PassStats ps;
        ps.pass = "partition";
        lay.stats.passes.push_back(ps);
        if (verifyEnabled()) {
            VerifyContext ctx;
            ctx.input = &in;
            ctx.pass = "partition";
            ctx.afterDedup = true;
            verifyPartitionPlan(lay, *in.depths, ctx);
        }
    }
    return lay;
}

} // namespace omnisim::opt
