#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/omnisim.hh"
#include "opt/build.hh"
#include "runtime/fifo_table.hh"
#include "support/logging.hh"

namespace omnisim::opt::detail
{

namespace
{

constexpr Cycles kInfCycles = std::numeric_limits<Cycles>::max();

bool
isReadKind(EventKind k)
{
    return k == EventKind::FifoNbRead || k == EventKind::FifoCanRead;
}

std::uint64_t
fnv1a(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
    }
    return h;
}

} // namespace

/**
 * Interval analysis over the whole candidate depth lattice.
 *
 * Per FIFO, probing any depth s >= writes+1 behaves exactly like
 * s = writes+1: no WAR edge read(r) -> write(r+s) fits under r+s <=
 * writes, and every recorded write-kind constraint index is <= writes+1
 * (a failed attempt retries the same index), so the `index <= s` branch
 * resolves identically. The lattice is therefore finite: s in
 * [1, writes+1] per FIFO.
 *
 * LB[v] — longest path over structural edges only — is a valid lower
 * bound at every lattice point (WAR edges only add constraints). UB[v]
 * — longest path over the structural graph plus the *union* overlay,
 * where blocking write w is gated behind every read r < w of its FIFO
 * (in-value prefixMaxUB[r<w] + 1) — is a valid upper bound, because the
 * union contains the overlay of every lattice point. Both solve in one
 * Kahn pass over the union graph: a topological order of the union is
 * also one of its structural subgraph. If the union is cyclic, the
 * analysis keeps everything (sound; and note a cyclic union does not
 * make any single lattice point infeasible, so no pruning decision may
 * rely on it).
 */
void
latticePrune(Build &b, PassStats &st)
{
    const std::size_t n = b.n;
    const auto &tables = *b.in->tables;
    const auto &cons = *b.in->constraints;
    const std::size_t nf = tables.size();

    std::vector<std::uint32_t> indeg(n, 0);
    for (std::size_t u = 0; u < n; ++u)
        for (const auto &[v, w] : b.out[u])
            ++indeg[v];

    // Gated blocking writes, ascending write index (gate g = number of
    // union in-edges' source reads = min(w-1, reads); nondecreasing in
    // w, so a per-FIFO release pointer suffices).
    struct Gate
    {
        std::uint32_t g = 0;
        std::uint32_t node = 0;
    };
    std::vector<std::vector<Gate>> gates(nf);
    std::vector<std::size_t> nextGate(nf, 0);
    std::vector<std::vector<Cycles>> prefixUB(nf);
    std::vector<std::vector<std::uint8_t>> readDone(nf);
    std::vector<std::uint32_t> prefixLen(nf, 0);
    for (std::size_t f = 0; f < nf; ++f) {
        const FifoTable &t = tables[f];
        prefixUB[f].assign(t.reads() + 1, 0);
        readDone[f].assign(t.reads() + 1, 0);
        for (std::uint32_t w = 1; w <= t.writes(); ++w) {
            const std::uint64_t v = t.writeNodeOf(w);
            if (!b.accBlocking[v])
                continue;
            const std::uint32_t g = std::min(w - 1, t.reads());
            if (g >= 1) {
                gates[f].push_back(
                    {g, static_cast<std::uint32_t>(v)});
                ++indeg[v];
            }
        }
    }

    std::vector<Cycles> lb = b.seed;
    std::vector<Cycles> ub = b.seed;
    std::vector<std::uint32_t> ready;
    for (std::size_t v = 0; v < n; ++v)
        if (indeg[v] == 0)
            ready.push_back(static_cast<std::uint32_t>(v));

    std::size_t processed = 0;
    while (!ready.empty()) {
        const std::uint32_t u = ready.back();
        ready.pop_back();
        ++processed;
        if (b.accFifo[u] >= 0 && !b.accWrite[u]) {
            // Read finished: advance its FIFO's done prefix, releasing
            // gated writes as the prefix passes their gate.
            const auto f = static_cast<std::size_t>(b.accFifo[u]);
            const FifoTable &t = tables[f];
            readDone[f][b.accIdx[u]] = 1;
            std::uint32_t &pl = prefixLen[f];
            while (pl < t.reads() && readDone[f][pl + 1]) {
                ++pl;
                prefixUB[f][pl] =
                    std::max(prefixUB[f][pl - 1], ub[t.readNodeOf(pl)]);
                while (nextGate[f] < gates[f].size() &&
                       gates[f][nextGate[f]].g <= pl) {
                    const Gate gt = gates[f][nextGate[f]++];
                    ub[gt.node] = std::max(ub[gt.node],
                                           prefixUB[f][gt.g] + 1);
                    if (--indeg[gt.node] == 0)
                        ready.push_back(gt.node);
                }
            }
        }
        for (const auto &[v, w] : b.out[u]) {
            lb[v] = std::max(lb[v], lb[u] + w);
            ub[v] = std::max(ub[v], ub[u] + w);
            if (--indeg[v] == 0)
                ready.push_back(v);
        }
    }
    const bool boundsValid = processed == n;

    if (boundsValid) {
        // WAR relevance. Edge read(r) -> write(w) can only bind when
        // the read may finish at or after the write's earliest start:
        // UB[read] + 1 > LB[write]. A read none of whose candidate
        // writes satisfies that (via the suffix-min of blocking-write
        // LBs), or a blocking write none of whose earlier reads does
        // (via the read-UB prefix max), can never move any node time.
        for (std::size_t f = 0; f < nf; ++f) {
            const FifoTable &t = tables[f];
            std::vector<Cycles> sufMinLb(t.writes() + 2, kInfCycles);
            for (std::uint32_t w = t.writes(); w >= 1; --w) {
                const std::uint64_t v = t.writeNodeOf(w);
                sufMinLb[w] = std::min(sufMinLb[w + 1],
                                       b.accBlocking[v] ? lb[v]
                                                        : kInfCycles);
            }
            for (std::uint32_t r = 1; r <= t.reads(); ++r) {
                const Cycles ubr = ub[t.readNodeOf(r)];
                const Cycles lim = sufMinLb[std::min<std::uint32_t>(
                    r + 1, t.writes() + 1)];
                b.readKept[f][r - 1] =
                    (lim != kInfCycles && ubr >= lim) ? 1 : 0;
            }
            for (std::uint32_t w = 1; w <= t.writes(); ++w) {
                const std::uint64_t v = t.writeNodeOf(w);
                if (!b.accBlocking[v]) {
                    b.writeKept[f][w - 1] = 0;
                    continue;
                }
                const std::uint32_t g = std::min(w - 1, t.reads());
                b.writeKept[f][w - 1] =
                    (g >= 1 && prefixUB[f][g] >= lb[v]) ? 1 : 0;
            }
        }
    } else {
        // Union overlay cyclic: no bounds. Keep every access entry
        // addressable (identity WAR behavior).
        for (std::size_t f = 0; f < nf; ++f) {
            std::fill(b.readKept[f].begin(), b.readKept[f].end(), 1);
            std::fill(b.writeKept[f].begin(), b.writeKept[f].end(), 1);
        }
    }

    // Constraint pruning: drop a recorded query iff its outcome is
    // provably the recorded one at *every* lattice point — then it can
    // never flip, so skipping it preserves the first-divergent ordering
    // exactly. Kept constraints pin their query node and every node
    // their evaluation may address at some depth.
    std::vector<std::uint32_t> maxWriteConsIdx(nf, 0);
    for (std::size_t i = 0; i < cons.size(); ++i) {
        const QueryRecord &qr = cons[i];
        const FifoTable &t = tables[qr.fifo];
        const auto f = static_cast<std::size_t>(qr.fifo);
        int constant = -1; // -1 unknown, 0 false, 1 true
        if (isReadKind(qr.kind)) {
            // Outcome: writes >= i && time[write_i] < time[node].
            if (t.writes() < qr.index) {
                constant = 0;
            } else if (boundsValid) {
                const std::uint64_t wv = t.writeNodeOf(qr.index);
                if (ub[wv] < lb[qr.node])
                    constant = 1;
                else if (lb[wv] >= ub[qr.node])
                    constant = 0;
            }
        } else {
            // Outcome at depth s: i <= s, else reads >= i-s &&
            // time[read_{i-s}] < time[node]. s = cap >= i makes the
            // first branch true, so constant-false is unreachable;
            // constant-true needs every s < i to resolve true too.
            if (qr.index <= 1) {
                constant = 1;
            } else if (boundsValid && qr.index - 1 <= t.reads() &&
                       prefixUB[f][qr.index - 1] < lb[qr.node]) {
                constant = 1;
            }
        }
        if (constant >= 0 && (constant == 1) == qr.outcome) {
            b.consKept[i] = 0;
            ++st.constraintsEliminated;
            continue;
        }
        b.consKept[i] = 1;
        if (isReadKind(qr.kind)) {
            if (qr.index <= t.writes())
                b.writeKept[f][qr.index - 1] = 1;
        } else {
            maxWriteConsIdx[f] =
                std::max(maxWriteConsIdx[f], qr.index);
        }
    }
    // A kept write-kind query of index i may address read_{i-s} for any
    // probed s in [1, cap], so reads 1..i-1 stay addressable.
    for (std::size_t f = 0; f < nf; ++f) {
        if (maxWriteConsIdx[f] == 0)
            continue;
        const std::uint32_t hi = std::min(maxWriteConsIdx[f] - 1,
                                          tables[f].reads());
        for (std::uint32_t r = 1; r <= hi; ++r)
            b.readKept[f][r - 1] = 1;
    }

    // Eliminated edges: canonicalized parallel edges plus every
    // baseline WAR edge whose endpoints are no longer addressable.
    st.edgesEliminated += b.canonEdgesRemoved;
    for (std::size_t f = 0; f < nf; ++f) {
        const FifoTable &t = tables[f];
        const std::uint32_t s = (*b.in->depths)[f];
        for (std::uint64_t w = static_cast<std::uint64_t>(s) + 1;
             w <= t.writes(); ++w) {
            if (w - s > t.reads())
                continue;
            const auto wi = static_cast<std::uint32_t>(w);
            if (!b.accBlocking[t.writeNodeOf(wi)])
                continue;
            if (!b.writeKept[f][wi - 1] ||
                !b.readKept[f][wi - s - 1])
                ++st.edgesEliminated;
        }
    }
}

/**
 * Fold away unpinned nodes with in/out degree <= 1. A pass-through node
 * u -w1-> v -w2-> x becomes the interval edge u -(w1+w2)-> x; a source
 * pushes its start into its successor's seed; a sink folds its
 * completion into its predecessor's extended duration; an isolated node
 * folds into the constant floor. time[v] = max(seed[v], time[u] + w1)
 * and v's contribution time[v] + dur[v] are preserved exactly through
 * seed/dur/floor folding, so survivors' times and the re-finalized
 * total are bit-identical at every depth vector.
 */
void
chainCollapse(Build &b, PassStats &st)
{
    const std::size_t nodesBefore =
        static_cast<std::size_t>(std::count(b.alive.begin(),
                                            b.alive.end(), 1));
    const std::size_t edgesBefore = b.liveEdges;

    std::vector<std::uint32_t> work;
    for (std::size_t v = 0; v < b.n; ++v)
        if (b.alive[v] && !b.pinned[v] && b.rin[v].size() <= 1 &&
            b.out[v].size() <= 1)
            work.push_back(static_cast<std::uint32_t>(v));

    while (!work.empty()) {
        const std::uint32_t v = work.back();
        work.pop_back();
        if (!b.alive[v] || b.pinned[v] || b.rin[v].size() > 1 ||
            b.out[v].size() > 1)
            continue;
        const bool hasIn = !b.rin[v].empty();
        const bool hasOut = !b.out[v].empty();
        if ((hasIn && b.rin[v][0].first == v) ||
            (hasOut && b.out[v][0].first == v))
            continue; // self-loop: leave the (infeasible) cycle intact

        b.floor = std::max(b.floor, b.seed[v] + b.dur[v]);
        if (!hasIn && !hasOut) {
            b.alive[v] = 0;
        } else if (!hasIn) {
            const auto [x, w] = b.out[v][0];
            b.seed[x] = std::max(b.seed[x], b.seed[v] + w);
            b.removeEdge(v, x);
            b.alive[v] = 0;
            work.push_back(x);
        } else if (!hasOut) {
            const auto [u, w] = b.rin[v][0];
            b.dur[u] = std::max(b.dur[u], w + b.dur[v]);
            b.removeEdge(u, v);
            b.alive[v] = 0;
            work.push_back(u);
        } else {
            const auto [u, w1] = b.rin[v][0];
            const auto [x, w2] = b.out[v][0];
            b.seed[x] = std::max(b.seed[x], b.seed[v] + w2);
            b.dur[u] = std::max(b.dur[u], w1 + b.dur[v]);
            b.removeEdge(u, v);
            b.removeEdge(v, x);
            b.addEdge(u, x, w1 + w2);
            b.alive[v] = 0;
            work.push_back(u);
            work.push_back(x);
        }
    }

    const std::size_t nodesAfter =
        static_cast<std::size_t>(std::count(b.alive.begin(),
                                            b.alive.end(), 1));
    st.nodesEliminated += nodesBefore - nodesAfter;
    st.edgesEliminated += edgesBefore - b.liveEdges;
}

/**
 * Merge structurally identical unpinned siblings: equal seed and equal
 * in-edge (source, weight) sets imply equal node times at every depth
 * vector (unpinned nodes carry no WAR in-edges), so duplicates fold
 * into a representative via the remap table; extended durations merge
 * by max, out-edges union. Iterates to a fixed point so identical
 * loop-iteration subgraphs collapse level by level. Merging preserves
 * cycles in both directions (any path through a duplicate exists
 * through the representative and vice versa).
 */
void
dedup(Build &b, PassStats &st)
{
    const std::size_t nodesBefore =
        static_cast<std::size_t>(std::count(b.alive.begin(),
                                            b.alive.end(), 1));
    const std::size_t edgesBefore = b.liveEdges;

    std::vector<std::pair<std::uint32_t, Cycles>> canonA, canonB;
    auto canonIn = [&](std::uint32_t v,
                       std::vector<std::pair<std::uint32_t, Cycles>>
                           &dst) {
        dst = b.rin[v];
        std::sort(dst.begin(), dst.end());
    };

    std::vector<std::uint8_t> dirty(b.n, 0);
    std::vector<std::uint32_t> srcTouched, touchedTargets;
    // Runs to a true fixed point (each non-final round removes at least
    // one node, so at most n rounds): the [dedup-fixpoint] verifier
    // invariant asserts no mergeable pair survives.
    for (;;) {
        struct Cand
        {
            std::uint64_t hash;
            std::uint32_t node;
        };
        std::vector<Cand> cands;
        for (std::size_t v = 0; v < b.n; ++v) {
            if (!b.alive[v] || b.pinned[v])
                continue;
            bool self = false;
            for (const auto &[src, w] : b.rin[v])
                if (src == v)
                    self = true;
            if (self)
                continue;
            canonIn(static_cast<std::uint32_t>(v), canonA);
            std::uint64_t h = fnv1a(1469598103934665603ull, b.seed[v]);
            for (const auto &[src, w] : canonA) {
                h = fnv1a(h, src);
                h = fnv1a(h, w);
            }
            cands.push_back({h, static_cast<std::uint32_t>(v)});
        }
        std::sort(cands.begin(), cands.end(),
                  [](const Cand &a, const Cand &c) {
                      return a.hash != c.hash ? a.hash < c.hash
                                              : a.node < c.node;
                  });

        std::fill(dirty.begin(), dirty.end(), 0);
        std::size_t merged = 0;
        for (std::size_t i = 0; i < cands.size();) {
            std::size_t j = i;
            while (j < cands.size() && cands[j].hash == cands[i].hash)
                ++j;
            // Within one hash run, group by full key. Reps are the
            // smallest ids (the run is id-sorted), which also keeps the
            // result independent of hash quality.
            std::vector<std::uint32_t> reps;
            for (std::size_t k = i; k < j; ++k) {
                const std::uint32_t v = cands[k].node;
                if (dirty[v] || !b.alive[v])
                    continue;
                canonIn(v, canonA);
                std::uint32_t target = kNoNode;
                for (const std::uint32_t r : reps) {
                    if (b.seed[r] != b.seed[v])
                        continue;
                    canonIn(r, canonB);
                    if (canonA == canonB) {
                        target = r;
                        break;
                    }
                }
                if (target == kNoNode) {
                    reps.push_back(v);
                    continue;
                }
                // Merge v into target. In-edges are identical; drop
                // v's copies — but only on the rin side for now, so a
                // high-fanout shared source is compacted once per
                // round instead of scanned per duplicate. Out-edges
                // move over max-merged: exactly on the rin side, via
                // one append + re-canonicalization per run on the out
                // side. Nodes whose in-edge list changed get stale
                // keys this round; they retry next round.
                b.mergedInto[v] = target;
                b.dur[target] = std::max(b.dur[target], b.dur[v]);
                b.liveEdges -= b.rin[v].size();
                for (const auto &[u, w] : b.rin[v])
                    srcTouched.push_back(u);
                b.rin[v].clear();
                bool movedAny = false;
                for (const auto &[x, w] : b.out[v]) {
                    if (!b.alive[x])
                        continue; // corpse edge, already uncounted
                    auto &ix = b.rin[x];
                    std::size_t vi = ix.size(), ti = ix.size();
                    for (std::size_t p = 0; p < ix.size(); ++p) {
                        if (ix[p].first == v)
                            vi = p;
                        else if (ix[p].first == target)
                            ti = p;
                    }
                    if (ti != ix.size()) {
                        // target already reaches x: max-merge; the
                        // duplicate appended below is removed (and
                        // counted) by the run-end canonicalization.
                        ix[ti].second = std::max(ix[ti].second, w);
                        ix[vi] = ix.back();
                        ix.pop_back();
                    } else {
                        ix[vi].first = target;
                    }
                    b.out[target].push_back({x, w});
                    dirty[x] = 1;
                    movedAny = true;
                }
                b.out[v].clear();
                if (movedAny)
                    touchedTargets.push_back(target);
                b.alive[v] = 0;
                ++merged;
            }
            // Re-canonicalize reps that absorbed out-edges (duplicate
            // (dst) entries from the appends; sorted, so max is last).
            // Safe point: a rep is only ever a candidate within this
            // run, so no later run sees the transient parallel edges.
            for (const std::uint32_t t : touchedTargets) {
                auto &lst = b.out[t];
                std::sort(lst.begin(), lst.end());
                std::size_t keep = 0;
                for (std::size_t p = 0; p < lst.size(); ++p) {
                    if (keep > 0 && lst[keep - 1].first == lst[p].first)
                        lst[keep - 1].second = lst[p].second;
                    else
                        lst[keep++] = lst[p];
                }
                b.liveEdges -= lst.size() - keep;
                lst.resize(keep);
            }
            touchedTargets.clear();
            i = j;
        }
        if (merged != 0) {
            // Purge corpse entries (out-edges into merged nodes, whose
            // counts were already released) from every touched source,
            // once per round.
            std::sort(srcTouched.begin(), srcTouched.end());
            srcTouched.erase(
                std::unique(srcTouched.begin(), srcTouched.end()),
                srcTouched.end());
            for (const std::uint32_t u : srcTouched) {
                auto &lst = b.out[u];
                lst.erase(std::remove_if(lst.begin(), lst.end(),
                                         [&](const auto &e) {
                                             return !b.alive[e.first];
                                         }),
                          lst.end());
            }
            srcTouched.clear();
        }
        if (merged == 0)
            break;
    }

    const std::size_t nodesAfter =
        static_cast<std::size_t>(std::count(b.alive.begin(),
                                            b.alive.end(), 1));
    st.nodesEliminated += nodesBefore - nodesAfter;
    st.edgesEliminated += edgesBefore - b.liveEdges;
}

} // namespace omnisim::opt::detail
