/**
 * @file
 * Optimization levels and pass statistics for the graph compilation
 * pipeline (the LightningSimV2 direction: compile and shrink the
 * simulation graph before solving it).
 *
 * This header is deliberately tiny — core/omnisim.hh includes it so the
 * engine options can carry an OptLevel without pulling the pass manager
 * into every translation unit.
 */

#ifndef OMNISIM_OPT_OPT_HH
#define OMNISIM_OPT_OPT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace omnisim::opt
{

/**
 * How aggressively a finished run is compiled before freezing.
 *
 * O0 freezes the traced graph verbatim (the pre-pipeline behavior, kept
 * as the conformance oracle's reference). O1 runs the full pass list;
 * every optimization is exact — resimulate() answers are bit-identical
 * to O0 across the entire candidate depth lattice, enforced by the
 * conformance fuzzer's opt-vs-O0 oracle.
 */
enum class OptLevel : std::uint8_t
{
    O0 = 0,
    O1 = 1,
};

/** @return "O0" / "O1". */
const char *optLevelName(OptLevel level);

/** What one pass removed from the graph it was handed. */
struct PassStats
{
    std::string pass; ///< "lattice-prune", "chain-collapse", "dedup".
    std::uint64_t nodesEliminated = 0;
    std::uint64_t edgesEliminated = 0;
    std::uint64_t constraintsEliminated = 0;
};

/** Aggregate outcome of compiling one run. */
struct CompileStats
{
    OptLevel level = OptLevel::O0;
    std::vector<PassStats> passes;

    std::uint64_t origNodes = 0;
    std::uint64_t origEdges = 0; ///< Structural edges before passes.
    std::uint64_t optNodes = 0;
    std::uint64_t optEdges = 0;  ///< Structural edges after passes.
    std::uint64_t origConstraints = 0;
    std::uint64_t keptConstraints = 0;

    /** Fraction of nodes+edges removed, in [0, 1]. */
    double elimination() const
    {
        const double before =
            static_cast<double>(origNodes + origEdges);
        if (before <= 0.0)
            return 0.0;
        const double after = static_cast<double>(optNodes + optEdges);
        return 1.0 - after / before;
    }

    /** Merge another run's counters into this one (serve stats). */
    void accumulate(const CompileStats &other);
};

} // namespace omnisim::opt

#endif // OMNISIM_OPT_OPT_HH
