/**
 * @file
 * RunLayout: the solver-facing image of a frozen run.
 *
 * CompiledRun's relaxation and constraint machinery no longer reads the
 * FIFO tables or the recorded constraint list directly — it operates on
 * a RunLayout, a set of plain arrays in *layout node ids*. The layout is
 * either the identity image of the traced graph (-O0) or the output of
 * the optimization pass pipeline (-O1): collapsed chains, deduplicated
 * subgraphs, pruned constraints, and per-FIFO access maps restricted to
 * the entries that can still matter under some depth vector.
 *
 * Invariants the passes guarantee (and the v3 decoder validates):
 *  - every kept FIFO access entry maps to a live layout node;
 *  - every kept constraint's node and reachable targets are live;
 *  - node times of live layout nodes equal the original nodes' times at
 *    every depth vector in the candidate lattice (depths clamp per FIFO
 *    to writes+1 — deeper behaves identically, see compiled_run.cc);
 *  - max(floor, max over live nodes of time+dur) equals the original
 *    re-finalized total at every such depth vector.
 */

#ifndef OMNISIM_OPT_LAYOUT_HH
#define OMNISIM_OPT_LAYOUT_HH

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "graph/csr.hh"
#include "opt/opt.hh"
#include "runtime/event.hh"
#include "support/types.hh"

namespace omnisim::opt
{

/** Sentinel: a FIFO access entry whose node was proven irrelevant. */
constexpr std::uint32_t kNoNode =
    std::numeric_limits<std::uint32_t>::max();

/** Sentinel in RunLayout::remap: original node has no live image. */
constexpr std::uint32_t kDropped =
    std::numeric_limits<std::uint32_t>::max();

/** Per-FIFO access map in layout ids. */
struct FifoLayout
{
    /** r-th committed read's layout node (1-based index r-1 here), or
     *  kNoNode when the read can never source a binding WAR edge and no
     *  kept constraint targets it. */
    std::vector<std::uint32_t> readNode;

    /** w-th committed write's layout node, or kNoNode likewise. */
    std::vector<std::uint32_t> writeNode;

    /** Depth clamp: probing any depth >= writes+1 behaves identically
     *  to writes+1 (no WAR edge exists and every write-kind constraint
     *  index is <= writes+1), so the solver clamps here. */
    std::uint32_t cap = 1;

    /** Live blocking writes (delta-size prediction). */
    std::uint32_t blockingWrites = 0;
};

/**
 * Rank-level partition of a layout for parallel relaxation.
 *
 * Nodes are grouped into levels by longest-path rank over the structural
 * edges plus the WAR overlay at the *baseline* clamped depths; every
 * in-edge of a level-L node originates strictly below L, so all nodes of
 * one level can be relaxed concurrently once the previous levels are
 * final. Wide levels are split into balanced cones (contiguous chunks of
 * the level's id-sorted node list) that worker threads claim
 * independently. `valid` only fails when the baseline overlay is cyclic
 * (a timing-infeasible baseline the engine reports on its own).
 *
 * Other depth vectors move the WAR edges, so the plan does not claim to
 * order all of them. Instead it derives, per FIFO, the *minimum
 * admissible depth*: the smallest depth at which every live blocking
 * write still sits strictly above the prefix of reads that could source
 * its WAR edge (shallower depths reach further back in the read
 * sequence; the prefix-max over read levels makes admissibility monotone
 * in the depth). A clamped probe whose depths all clear their FIFO's
 * threshold — `admits()` — relaxes on the leveled paths with the same
 * level-barrier correctness argument as the baseline; anything shallower
 * takes the serial paths. The baseline itself always admits whenever
 * per-FIFO read levels are monotone in program order (the WAR(baseline)
 * edges participated in levelization).
 */
struct PartitionPlan
{
    bool valid = false;

    /** Live nodes ordered by (level, id): a topological order of the
     *  structural + WAR overlay graph at every *admitted* depth vector. */
    std::vector<std::uint32_t> order;

    /** levels+1 offsets into `order`; level L is
     *  order[levelOffsets[L] .. levelOffsets[L+1]). */
    std::vector<std::uint32_t> levelOffsets;

    /** cones+1 offsets into `order`, refining levelOffsets (every level
     *  boundary is also a cone boundary). A cone is one worker's unit of
     *  claimable work inside a level. */
    std::vector<std::uint32_t> coneOffsets;

    /** Structural edges whose endpoints fall in different cones. */
    std::uint64_t frontierEdges = 0;

    /** Widest level, in nodes (parallelism ceiling of the plan). */
    std::uint32_t maxLevelWidth = 0;

    /** Per-FIFO minimum admissible depth (size == layout FIFO count,
     *  every entry >= 1): the smallest clamped depth at which the level
     *  order still dominates that FIFO's WAR edges. See admits(). */
    std::vector<std::uint32_t> minSafeDepth;

    /** @return true when a *clamped* probe may relax on the leveled
     *  paths: the plan is valid and every FIFO's depth clears its
     *  minimum admissible depth. Deterministic in (plan, depths), so
     *  every replica of a run — live engine or rehydrated StoredRun —
     *  picks the same path for the same probe. */
    bool admits(const std::vector<std::uint32_t> &clamped) const
    {
        if (!valid || clamped.size() != minSafeDepth.size())
            return false;
        for (std::size_t f = 0; f < clamped.size(); ++f)
            if (clamped[f] < minSafeDepth[f])
                return false;
        return true;
    }

    std::uint32_t levels() const
    {
        return levelOffsets.empty()
                   ? 0
                   : static_cast<std::uint32_t>(levelOffsets.size() - 1);
    }
    std::uint32_t cones() const
    {
        return coneOffsets.empty()
                   ? 0
                   : static_cast<std::uint32_t>(coneOffsets.size() - 1);
    }
};

/** One kept recorded constraint, in recorded order. */
struct LayoutCons
{
    std::uint32_t origIndex = 0; ///< Index into the recorded list.
    std::uint32_t fifo = 0;
    EventKind kind = EventKind::FifoNbRead;
    std::uint32_t index = 0;     ///< 1-based access index queried.
    std::uint32_t node = 0;      ///< Query node, layout id.
    bool outcome = false;        ///< Recorded answer.
};

/** The compiled, possibly optimized image of one frozen run. */
struct RunLayout
{
    OptLevel level = OptLevel::O0;

    std::size_t numNodes = 0;
    std::vector<Cycles> seed; ///< Per-node minimum start times.
    /** Per-node duration, with module tail slack and the durations of
     *  collapsed successors folded in (max) — the total is always
     *  max(floor, max over nodes of time+dur). */
    std::vector<Cycles> dur;
    std::vector<CsrGraph::EdgeSpec> edges; ///< Structural, layout ids.

    // Per-node accessor map (WAR edges in O(1)), layout ids.
    std::vector<std::int32_t> accFifo;  ///< FIFO id, -1 for non-access.
    std::vector<std::uint32_t> accIdx;  ///< 1-based access index.
    std::vector<std::uint8_t> accWrite; ///< 1 == write entry.
    std::vector<std::uint8_t> accBlockingWrite;

    std::vector<FifoLayout> fifos;
    std::vector<LayoutCons> cons; ///< Kept, ascending origIndex.

    /** Constant lower bound on the total: the best time+dur any
     *  collapsed (depth-independent) node contributed. */
    Cycles floor = 0;

    /** Original node id -> layout id of its live image (itself, or the
     *  representative it was deduplicated into), or kDropped. */
    std::vector<std::uint32_t> remap;

    CompileStats stats;

    /** Rank-level partition for parallel relaxation; `part.valid` is
     *  false when the design must relax serially. Built by the -O1
     *  "partition" pass (and re-derived on rehydration of pre-v4 run
     *  files). */
    PartitionPlan part;

    /** Rebuild accFifo/accIdx/accWrite/accBlockingWrite + the per-FIFO
     *  blocking counts from fifos[]. writeBlocking[f][w-1] says whether
     *  the w-th write of FIFO f was committed by a *blocking* write (the
     *  only kind that may carry a WAR in-edge). Used by the pass manager
     *  and the v3 decoder. */
    void rebuildAccessMaps(
        const std::vector<std::vector<std::uint8_t>> &writeBlocking);
};

} // namespace omnisim::opt

#endif // OMNISIM_OPT_LAYOUT_HH
