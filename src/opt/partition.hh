/**
 * @file
 * The -O1 "partition" pass: levelize a materialized RunLayout and split
 * wide levels into balanced cones for the parallel relaxation engine.
 * See PartitionPlan in opt/layout.hh for the validity contract.
 */

#ifndef OMNISIM_OPT_PARTITION_HH
#define OMNISIM_OPT_PARTITION_HH

#include <cstdint>
#include <vector>

#include "opt/layout.hh"

namespace omnisim::opt
{

/** Default cone grain: wide levels split into chunks of at most this
 *  many nodes, so a level of width W exposes ceil(W / grain) units of
 *  claimable work. */
constexpr std::uint32_t kConeGrain = 128;

/**
 * Build a rank-level partition plan for `lay`.
 *
 * Levelizes the structural edges plus the WAR overlay at the *baseline*
 * depths (@p baseDepths, clamped per FIFO to its lattice cap first — the
 * same clamp resimulate() applies) by longest-path rank, then derives
 * the per-FIFO minimum admissible depths the levels support (see
 * PartitionPlan::minSafeDepth / minSafeDepths()). The plan is `valid`
 * whenever the baseline overlay is acyclic; which probes may use its
 * level order is a per-call PartitionPlan::admits() decision. A cyclic
 * overlay — a timing-infeasible baseline — yields `valid == false`
 * (levels empty) and the engine keeps the serial path.
 */
PartitionPlan
buildPartitionPlan(const RunLayout &lay,
                   const std::vector<std::uint32_t> &baseDepths,
                   std::uint32_t coneGrain = kConeGrain);

/**
 * Per-FIFO minimum admissible depths implied by a level assignment
 * (@p level, one entry per layout node). For FIFO f with live blocking
 * write at position i (0-based) on level L, a depth s is safe when the
 * WAR source position i-s is negative or every live read at positions
 * <= i-s sits strictly below L; the prefix-max over read levels makes
 * safety monotone in s, and the returned entry is the smallest safe
 * depth (>= 1) over all of f's live blocking writes. Exposed separately
 * so the run-file decoder can recompute and cross-check a persisted
 * plan's thresholds against its persisted levels.
 */
std::vector<std::uint32_t>
minSafeDepths(const RunLayout &lay, const std::vector<std::uint32_t> &level);

} // namespace omnisim::opt

#endif // OMNISIM_OPT_PARTITION_HH
