/**
 * @file
 * The IR verifier: an LLVM-style invariant checker over RunLayout and
 * PartitionPlan, run between every PassManager pass and on OMSIMRUN
 * rehydration.
 *
 * Every check carries a stable invariant id (the bracketed token in the
 * failure message and the `invariant` field of the "verify.fail" log
 * event). The catalog — see README "Static analysis" for prose:
 *
 *   [shape]                per-node array sizes match numNodes.
 *   [csr-sorted]           edges strictly sorted by (src, dst) — which
 *                          also forbids duplicates — with both
 *                          endpoints in range.
 *   [dag]                  the structural layout graph is acyclic.
 *   [remap-bijective]      remap entries are kDropped or in range,
 *                          every layout id has a preimage, and the
 *                          smallest preimage is strictly increasing in
 *                          layout id (materialization assigns dense ids
 *                          in ascending original id).
 *   [fifo-cap]             per-FIFO access maps: entries are kNoNode or
 *                          live layout nodes, and cap == writes + 1.
 *   [acc-map-consistent]   the O(1) accessor arrays (accFifo/accIdx/
 *                          accWrite/accBlockingWrite) and fifos[] are
 *                          two views of the same map, including the
 *                          blockingWrites counts.
 *   [cons-addressable]     kept constraints are in strictly ascending
 *                          recorded order, reference live nodes, and
 *                          their evaluation targets stay addressable
 *                          (read-kind: the target write entry; write-
 *                          kind: the sliding read-prefix rule).
 *   [chain-weight]         conservation through chain-collapse/dedup:
 *                          at the structural-only point of the lattice
 *                          (== the all-caps clamped depth vector) every
 *                          live-image original node's time and the
 *                          re-finalized total are preserved exactly.
 *                          Needs VerifyContext::input.
 *   [dedup-fixpoint]       no two live unpinned layout nodes with equal
 *                          seed and identical canonical in-edge lists
 *                          remain (dedup ran to a fixed point). Needs
 *                          VerifyContext::input and afterDedup.
 *   [plan-shape]           partition plan arrays span/refine/permute
 *                          correctly and maxLevelWidth is honest.
 *   [level-monotone]       levels strictly climb along every structural
 *                          edge and every WAR-overlay edge at the
 *                          clamped baseline depths.
 *   [threshold-admissible] persisted per-FIFO minimum admissible depths
 *                          equal what the levels imply (minSafeDepths).
 *   [plan-frontier]        the cross-cone structural edge count is
 *                          honest.
 *
 * A violation logs a structured "verify.fail" event (pass name,
 * invariant id, offending ids — picked up by the flight recorder ring)
 * and throws FatalError whose message embeds "[invariant-id]".
 *
 * Verification is always-on in Debug builds (!NDEBUG) and opt-in behind
 * the global --verify CLI flag (setVerifyEnabled) in Release.
 */

#ifndef OMNISIM_OPT_VERIFY_HH
#define OMNISIM_OPT_VERIFY_HH

#include <cstdint>
#include <vector>

#include "opt/layout.hh"
#include "opt/pass_manager.hh"

namespace omnisim::opt
{

/** What the verifier may assume about the layout being checked. */
struct VerifyContext
{
    /** The compile input, when verifying inside the pass pipeline;
     *  nullptr on rehydration (input-dependent checks are skipped). */
    const LayoutInput *input = nullptr;

    /** Stage name for diagnostics: a pass name, "materialize", or
     *  "rehydrate". */
    const char *pass = "?";

    /** True once the dedup pass has run (gates [dedup-fixpoint]). */
    bool afterDedup = false;
};

/** Toggle verification globally. Default: on in Debug (!NDEBUG),
 *  off in Release until --verify flips it. Thread-safe. */
void setVerifyEnabled(bool on);
bool verifyEnabled();

/**
 * Check every RunLayout invariant. @throws FatalError with the
 * invariant id bracketed in the message on the first violation.
 * Unconditional — callers gate on verifyEnabled().
 */
void verifyLayout(const RunLayout &lay, const VerifyContext &ctx);

/**
 * Check every PartitionPlan invariant against its layout and the
 * baseline depth vector it was built for. @throws FatalError likewise.
 */
void verifyPartitionPlan(const RunLayout &lay,
                         const std::vector<std::uint32_t> &baseDepths,
                         const VerifyContext &ctx);

} // namespace omnisim::opt

#endif // OMNISIM_OPT_VERIFY_HH
