#include "cosim/cosim.hh"

#include <algorithm>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "design/context.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "runtime/axi.hh"
#include "runtime/fifo_table.hh"
#include "runtime/memory.hh"
#include "runtime/timing.hh"
#include "support/logging.hh"
#include "support/sync.hh"

namespace omnisim
{

namespace
{

/** Raised inside context calls to unwind a module thread. */
struct SimAbort
{};

/** Scheduling state of one module thread. */
enum class TState : std::uint8_t
{
    Running,   ///< Executing HLS code.
    TimeWait,  ///< Waiting for the clock to reach a target cycle.
    CondWait,  ///< Waiting for another thread's FIFO commit.
    FloorWait, ///< Evaluating a cycle-t condition whose target entry is
               ///< absent: waiting for every peer's retroactive floor
               ///< to pass t (see waitRetroLocked).
    Done,      ///< Body returned (or unwound).
};

/**
 * Synthetic gate-level netlist standing in for the generated RTL. Real
 * co-simulation evaluates every clocked process each cycle; the sweep
 * below reproduces that cost profile (and its result feeds a checksum so
 * the work cannot be optimized away).
 */
class SyntheticNetlist
{
  public:
    SyntheticNetlist(std::size_t modules, std::size_t gates_per_module)
    {
        gates_.resize(modules * gates_per_module);
        std::uint64_t x = 0x243f6a8885a308d3ULL;
        for (auto &g : gates_) {
            x = x * 6364136223846793005ULL + 1442695040888963407ULL;
            g = x;
        }
    }

    /** Evaluate one clock edge over the whole netlist. */
    void
    evalCycle()
    {
        std::uint64_t acc = state_;
        for (std::uint64_t g : gates_)
            acc = (acc ^ g) + (acc >> 7);
        state_ = acc;
    }

    std::uint64_t checksum() const { return state_; }

  private:
    std::vector<std::uint64_t> gates_;
    std::uint64_t state_ = 0;
};

/** All shared co-simulation state, guarded by one mutex. */
class CosimShared
{
  public:
    CosimShared(const CompiledDesign &cd, const CosimOptions &opts)
        : design(cd.d()), opts(opts), pool(cd.d().makeMemoryPool()),
          tables(cd.d().fifos().size())
    {
        const std::size_t n = design.modules().size();
        for (std::size_t f = 0; f < tables.size(); ++f)
            tables[f].setLabel(design.fifos()[f].name);
        threads.resize(n);
        finalNow.assign(n, 0);
        live = n;
        if (opts.modelRtlCost) {
            netlist = std::make_unique<SyntheticNetlist>(
                n, opts.gatesPerModule);
        }
    }

    std::unique_ptr<SyntheticNetlist> netlist OMNISIM_GUARDED_BY(mu)
        OMNISIM_PT_GUARDED_BY(mu);

    const Design &design;
    const CosimOptions &opts;

    sync::Mutex mu;
    sync::CondVar cv;

    MemoryPool pool OMNISIM_GUARDED_BY(mu);
    std::vector<FifoTable> tables OMNISIM_GUARDED_BY(mu);

    Cycles clock OMNISIM_GUARDED_BY(mu) = 1;
    std::uint64_t commitEpoch OMNISIM_GUARDED_BY(mu) = 0;

    struct ThreadInfo
    {
        TState st = TState::Running;
        Cycles target = 0;
        std::uint64_t seenEpoch = 0;

        /** Lower bound on every cycle this thread may still commit an
         *  op at (TimingModel::retroFloor, published under the lock).
         *  Monotone; peers treat Done as an infinite floor. */
        Cycles floor = 1;

        /** Valid in FloorWait: the evaluation cycle being gated. */
        Cycles at = 0;

        /** Set by maybeAdvanceLocked when the earliest-attempt-false
         *  rule (§7.1) picks this FloorWait thread to resolve on
         *  present table state. */
        bool forced = false;

        /** Published alongside floor: the thread paused with an open
         *  elastic window (retroFloor < earliest). */
        bool retroOpen = false;
    };
    std::vector<ThreadInfo> threads OMNISIM_GUARDED_BY(mu);
    std::size_t live OMNISIM_GUARDED_BY(mu) = 0;

    /** Threads currently parked in FloorWait (floor publications only
     *  need to wake waiters when there are any). */
    std::size_t floorWaiters OMNISIM_GUARDED_BY(mu) = 0;

    bool deadlock OMNISIM_GUARDED_BY(mu) = false;
    bool crashed OMNISIM_GUARDED_BY(mu) = false;
    bool timeout OMNISIM_GUARDED_BY(mu) = false;
    Cycles deadlockCycle OMNISIM_GUARDED_BY(mu) = 0;
    bool deadlockRetroSuspect OMNISIM_GUARDED_BY(mu) = false;
    std::string crashMessage OMNISIM_GUARDED_BY(mu);
    std::uint64_t forcedFalse OMNISIM_GUARDED_BY(mu) = 0;
    std::uint64_t forcedBlind OMNISIM_GUARDED_BY(mu) = 0;

    std::vector<Cycles> finalNow OMNISIM_GUARDED_BY(mu);
    std::uint64_t cyclesStepped OMNISIM_GUARDED_BY(mu) = 0;
    std::uint64_t events OMNISIM_GUARDED_BY(mu) = 0;
    std::uint64_t pauses OMNISIM_GUARDED_BY(mu) = 0;

    bool
    abortFlag() const OMNISIM_REQUIRES(mu)
    {
        return deadlock || crashed || timeout;
    }

    /**
     * Clock-advance rule: when every live thread is waiting and every
     * CondWait thread has evaluated the latest commit state, either jump
     * the clock to the earliest TimeWait target or — if only CondWait
     * threads remain — declare a design deadlock.
     */
    void
    maybeAdvanceLocked() OMNISIM_REQUIRES(mu)
    {
        if (live == 0 || abortFlag())
            return;
        Cycles min_target = 0;
        bool have_target = false;
        for (const auto &ti : threads) {
            switch (ti.st) {
              case TState::Running:
                return; // somebody is still executing
              case TState::TimeWait:
                // A thread whose target the clock has reached has been
                // notified but not yet resumed: it counts as running.
                if (ti.target <= clock)
                    return;
                if (!have_target || ti.target < min_target) {
                    min_target = ti.target;
                    have_target = true;
                }
                break;
              case TState::CondWait:
              case TState::FloorWait:
                if (ti.seenEpoch != commitEpoch)
                    return; // it has not reacted to the last commit yet
                break;
              case TState::Done:
                break;
            }
        }
        if (!have_target) {
            // Nothing can run and no clock target exists. If a thread
            // is gating a cycle-t condition on peer floors, apply the
            // §7.1 earliest-query-false rule (the same rule — and the
            // same (cycle, module) ordering — OmniSim's Perf thread
            // uses): every thread has progressed past the earliest
            // gated attempt's cycle, so its target event must lie in
            // the future and the attempt resolves on present state.
            std::size_t victim = threads.size();
            for (std::size_t i = 0; i < threads.size(); ++i) {
                const ThreadInfo &ti = threads[i];
                if (ti.st != TState::FloorWait || ti.forced)
                    continue;
                if (victim == threads.size() ||
                    ti.at < threads[victim].at ||
                    (ti.at == threads[victim].at &&
                     i < static_cast<std::size_t>(victim)))
                    victim = i;
            }
            if (victim != threads.size()) {
                threads[victim].forced = true;
                ++forcedFalse;
                ++forcedBlind;
                cv.notify_all();
                return;
            }
            // All live threads starve on FIFO conditions: true deadlock.
            // Flag it when a paused thread still had an open elastic
            // window — pipelined hardware could have issued its next
            // iteration's ops where the serialized engine cannot.
            deadlock = true;
            deadlockCycle = clock;
            for (const auto &ti : threads)
                if (ti.st != TState::Done && ti.retroOpen)
                    deadlockRetroSuspect = true;
            cv.notify_all();
            return;
        }
        omnisim_assert(min_target > clock,
                       "clock advance to non-future cycle");
        // Every intervening clock edge evaluates the synthesized netlist,
        // exactly as an RTL simulator re-evaluates clocked processes.
        if (netlist) {
            for (Cycles c = clock; c < min_target; ++c)
                netlist->evalCycle();
        }
        cyclesStepped += min_target - clock;
        clock = min_target;
        if (clock > opts.maxCycles)
            timeout = true;
        cv.notify_all();
    }
};

/** The cycle-lockstep context for one module thread. */
class CosimContext : public Context
{
  public:
    CosimContext(CosimShared &sh, ModuleId mod)
        : sh_(sh), mod_(mod), timing_(0)
    {}

    TimingModel &timing() { return timing_; }

    // ---- FIFO operations -------------------------------------------

    Value
    read(FifoId f) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t r = t.reads() + 1;
        for (;;) {
            guardLocked();
            if (t.writes() >= r) {
                Cycles at = std::max(timing_.earliest(),
                                     t.writeCycleOf(r) + 1);
                waitCycleLocked(lk, at);
                const Value v = t.commitRead(at, 0);
                commitLocked();
                timing_.commitOp(at, 1, 0);
                return v;
            }
            condWaitLocked(lk);
        }
    }

    void
    write(FifoId f, Value v) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t w = t.writes() + 1;
        const std::uint32_t depth = sh_.design.fifos()[f].depth;
        for (;;) {
            guardLocked();
            if (w <= depth) {
                const Cycles at = timing_.earliest();
                waitCycleLocked(lk, at);
                t.commitWrite(v, at, 0);
                commitLocked();
                timing_.commitOp(at, 1, 0);
                return;
            }
            if (t.reads() >= w - depth) {
                Cycles at = std::max(timing_.earliest(),
                                     t.readCycleOf(w - depth) + 1);
                waitCycleLocked(lk, at);
                t.commitWrite(v, at, 0);
                commitLocked();
                timing_.commitOp(at, 1, 0);
                return;
            }
            condWaitLocked(lk);
        }
    }

    bool
    readNb(FifoId f, Value &out) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t r = t.reads() + 1;
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        // A committed target entry carries a final cycle; an absent one
        // may still appear retroactively (the writer can be blocked or
        // pipelined) — gate on the peer floors before concluding a miss.
        if (t.writes() < r)
            waitRetroLocked(lk, at, [&] { return t.writes() >= r; });
        const bool ok = t.writes() >= r && t.writeCycleOf(r) < at;
        if (ok) {
            out = t.commitRead(at, 0);
            commitLocked();
        }
        timing_.commitOp(at, 1, 0);
        publishFloorLocked();
        return ok;
    }

    bool
    writeNb(FifoId f, Value v) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t w = t.writes() + 1;
        const std::uint32_t depth = sh_.design.fifos()[f].depth;
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        if (w > depth && t.reads() < w - depth)
            waitRetroLocked(lk, at,
                            [&] { return t.reads() >= w - depth; });
        const bool ok =
            w <= depth ||
            (t.reads() >= w - depth && t.readCycleOf(w - depth) < at);
        if (ok) {
            t.commitWrite(v, at, 0);
            commitLocked();
        }
        timing_.commitOp(at, 1, 0);
        publishFloorLocked();
        return ok;
    }

    bool
    empty(FifoId f) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t next = t.reads() + 1;
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        combGuard(at);
        if (t.writes() < next)
            waitRetroLocked(lk, at, [&] { return t.writes() >= next; });
        return !(t.writes() >= next && t.writeCycleOf(next) < at);
    }

    bool
    full(FifoId f) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        FifoTable &t = sh_.tables[f];
        const std::uint32_t next = t.writes() + 1;
        const std::uint32_t depth = sh_.design.fifos()[f].depth;
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        combGuard(at);
        if (next <= depth)
            return false;
        if (t.reads() < next - depth)
            waitRetroLocked(lk, at,
                            [&] { return t.reads() >= next - depth; });
        return !(t.reads() >= next - depth &&
                 t.readCycleOf(next - depth) < at);
    }

    // Co-simulation is the unoptimized reference: unused checks are
    // evaluated exactly like used ones.
    void emptyUnused(FifoId f) override { (void)empty(f); }
    void fullUnused(FifoId f) override { (void)full(f); }

    // ---- Memory and AXI --------------------------------------------

    Value
    load(MemId m, std::uint64_t idx) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        return sh_.pool.load(m, idx);
    }

    void
    store(MemId m, std::uint64_t idx, Value v) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        sh_.pool.store(m, idx, v);
    }

    void
    axiReadReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        axiState(a).pushReadReq(addr, len, at, 0);
        timing_.commitOp(at, 1, 0);
    }

    Value
    axiRead(AxiId a) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popReadBeat(addr);
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        waitCycleLocked(lk, at);
        const Value v =
            sh_.pool.load(sh_.design.axiPorts()[a].backing, addr);
        timing_.commitOp(at, 1, 0);
        return v;
    }

    void
    axiWriteReq(AxiId a, std::uint64_t addr, std::uint32_t len) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        const Cycles at = timing_.earliest();
        waitCycleLocked(lk, at);
        axiState(a).pushWriteReq(addr, len, at, 0);
        timing_.commitOp(at, 1, 0);
    }

    void
    axiWrite(AxiId a, Value v) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        std::uint64_t addr = 0;
        const AxiPortState::Dep dep = axiState(a).popWriteBeat(addr);
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        waitCycleLocked(lk, at);
        sh_.pool.store(sh_.design.axiPorts()[a].backing, addr, v);
        timing_.commitOp(at, 1, 0);
        lastWriteBeat_ = at;
    }

    void
    axiWriteResp(AxiId a) override
    {
        sync::UniqueLock lk(sh_.mu);
        bump();
        const AxiPortState::Dep dep =
            axiState(a).popWriteResp(lastWriteBeat_, 0);
        const Cycles at =
            std::max(timing_.earliest(), dep.time + dep.weight);
        waitCycleLocked(lk, at);
        timing_.commitOp(at, 1, 0);
    }

    // ---- Timing ----------------------------------------------------

    void
    advance(Cycles n) override
    {
        timing_.advance(n);
        if (n > 0)
            zeroOps_ = 0;
    }

    Cycles now() const override { return timing_.now(); }
    void pipelineBegin(std::uint32_t ii) override
    {
        timing_.pipelineBegin(ii);
    }
    void iterBegin() override { timing_.iterBegin(); }
    void pipelineEnd() override { timing_.pipelineEnd(); }

  private:
    AxiPortState &
    axiState(AxiId a)
    {
        auto it = axi_.find(a);
        if (it == axi_.end()) {
            it = axi_.emplace(a,
                AxiPortState(sh_.design.axiPorts()[a].config)).first;
        }
        return it->second;
    }

    void
    bump() OMNISIM_REQUIRES(sh_.mu)
    {
        ++sh_.events;
        // Every op entry refreshes the published retroactive floor:
        // peers gated on it in FloorWait must observe monotone progress.
        publishFloorLocked();
    }

    void
    guardLocked() const OMNISIM_REQUIRES(sh_.mu)
    {
        if (sh_.abortFlag())
            throw SimAbort{};
    }

    /** Detect status-check spins that never advance the local clock. */
    void
    combGuard(Cycles at) OMNISIM_REQUIRES(sh_.mu)
    {
        if (at == lastZeroCycle_) {
            if (++zeroOps_ > sh_.opts.combLimit) {
                sh_.crashed = true;
                sh_.crashMessage = strf(
                    "combinational loop in module '%s': %llu status "
                    "checks at cycle %llu without time advance",
                    sh_.design.modules()[mod_].name.c_str(),
                    static_cast<unsigned long long>(zeroOps_),
                    static_cast<unsigned long long>(at));
                sh_.cv.notify_all();
                throw SimAbort{};
            }
        } else {
            lastZeroCycle_ = at;
            zeroOps_ = 1;
        }
    }

    /**
     * Publish this thread's retroactive floor (TimingModel::retroFloor)
     * so peers evaluating cycle-dependent conditions know when "no op
     * before cycle t" has become final. Wakes FloorWait peers when the
     * floor rises past what they might be gated on.
     */
    void
    publishFloorLocked() OMNISIM_REQUIRES(sh_.mu)
    {
        CosimShared::ThreadInfo &ti = sh_.threads[mod_];
        const Cycles f = timing_.retroFloor();
        ti.retroOpen = f < timing_.earliest();
        if (f > ti.floor) {
            ti.floor = f;
            if (sh_.floorWaiters > 0) {
                ++sh_.commitEpoch;
                sh_.cv.notify_all();
            }
        }
    }

    /** @return true when no other live thread can still commit an op
     *  strictly before cycle t. */
    bool
    othersPassedLocked(Cycles t) const OMNISIM_REQUIRES(sh_.mu)
    {
        for (std::size_t i = 0; i < sh_.threads.size(); ++i) {
            if (i == static_cast<std::size_t>(mod_))
                continue;
            const CosimShared::ThreadInfo &ti = sh_.threads[i];
            if (ti.st != TState::Done && ti.floor < t)
                return false;
        }
        return true;
    }

    /**
     * A cycle-`at` FIFO condition whose target entry is still absent may
     * only conclude "the event has not happened before at" once no peer
     * can retroactively commit before `at`: a thread blocked on a FIFO
     * (or inside an elastic pipeline) may still place ops at cycles
     * earlier than the global clock. Waits until the entry appears
     * (entryPresent), every peer floor passes `at`, or — when the whole
     * design is otherwise stuck — the earliest-attempt-false rule picks
     * this thread to resolve on present state (§7.1, mirrored from the
     * OmniSim Perf thread). The caller re-reads the table after this
     * returns; commit cycles are final, so the comparison is then exact.
     */
    template <typename Pred>
    void
    waitRetroLocked(sync::UniqueLock &lk, Cycles at, Pred &&entryPresent)
        OMNISIM_REQUIRES(sh_.mu)
    {
        CosimShared::ThreadInfo &ti = sh_.threads[mod_];
        publishFloorLocked();
        for (;;) {
            guardLocked();
            if (entryPresent() || othersPassedLocked(at) || ti.forced)
                break;
            ++sh_.pauses;
            ti.st = TState::FloorWait;
            ti.at = at;
            ti.seenEpoch = sh_.commitEpoch;
            ++sh_.floorWaiters;
            sh_.maybeAdvanceLocked();
            while (!(sh_.abortFlag() || ti.forced ||
                     sh_.commitEpoch != ti.seenEpoch))
                sh_.cv.wait(lk);
            --sh_.floorWaiters;
            ti.st = TState::Running;
        }
        ti.st = TState::Running;
        ti.forced = false;
        guardLocked();
    }

    /** Block until the global clock reaches cycle t. */
    void
    waitCycleLocked(sync::UniqueLock &lk, Cycles t)
        OMNISIM_REQUIRES(sh_.mu)
    {
        CosimShared::ThreadInfo &ti = sh_.threads[mod_];
        publishFloorLocked();
        if (sh_.clock >= t) {
            guardLocked();
            return;
        }
        ++sh_.pauses;
        ti.st = TState::TimeWait;
        ti.target = t;
        sh_.maybeAdvanceLocked();
        while (!(sh_.abortFlag() || sh_.clock >= t))
            sh_.cv.wait(lk);
        ti.st = TState::Running;
        guardLocked();
    }

    /** Block until another thread commits a FIFO access. */
    void
    condWaitLocked(sync::UniqueLock &lk) OMNISIM_REQUIRES(sh_.mu)
    {
        CosimShared::ThreadInfo &ti = sh_.threads[mod_];
        publishFloorLocked();
        ++sh_.pauses;
        ti.st = TState::CondWait;
        ti.seenEpoch = sh_.commitEpoch;
        sh_.maybeAdvanceLocked();
        while (!(sh_.abortFlag() || sh_.commitEpoch != ti.seenEpoch))
            sh_.cv.wait(lk);
        ti.st = TState::Running;
        guardLocked();
    }

    /** Publish a FIFO commit to waiting threads. */
    void
    commitLocked() OMNISIM_REQUIRES(sh_.mu)
    {
        ++sh_.commitEpoch;
        zeroOps_ = 0;
        sh_.cv.notify_all();
    }

    CosimShared &sh_;
    ModuleId mod_;
    TimingModel timing_;
    std::map<AxiId, AxiPortState> axi_;
    Cycles lastWriteBeat_ = 0;
    Cycles lastZeroCycle_ = 0;
    std::uint64_t zeroOps_ = 0;
};

/** Body wrapper for one module thread. */
void
moduleThread(CosimShared &sh, ModuleId mod)
{
    CosimContext ctx(sh, mod);
    bool crashed_here = false;
    std::string crash_msg;
    try {
        sh.design.modules()[mod].body(ctx);
    } catch (const SimAbort &) {
        // Another thread aborted the run; unwind quietly.
    } catch (const SimCrash &c) {
        crashed_here = true;
        crash_msg = strf("@E Simulation failed: SIGSEGV (%s in task '%s')",
                         c.what(), sh.design.modules()[mod].name.c_str());
    }
    sync::LockGuard lk(sh.mu);
    if (crashed_here && !sh.crashed) {
        sh.crashed = true;
        sh.crashMessage = crash_msg;
    }
    sh.threads[mod].st = TState::Done;
    sh.finalNow[mod] = ctx.timing().now();
    --sh.live;
    // A finished thread can no longer commit anything: floor-gated
    // peers must re-check (Done counts as an infinite floor).
    ++sh.commitEpoch;
    sh.maybeAdvanceLocked();
    sh.cv.notify_all();
}

} // namespace

SimResult
simulateCosim(const CompiledDesign &cd, const CosimOptions &opts)
{
    static obs::Counter &mRuns =
        obs::Registry::global().counter("engine.cosim.runs");
    static obs::Histogram &mRunUs =
        obs::Registry::global().histogram("engine.cosim.run_us");
    OMNISIM_SPAN("cosim.run");
    obs::ScopedLatencyUs runTimer(mRunUs);
    mRuns.add();

    const Design &design = cd.d();
    CosimShared sh(cd, opts);

    std::vector<std::thread> workers;
    workers.reserve(design.modules().size());
    for (ModuleId m : cd.threadPlan)
        workers.emplace_back(moduleThread, std::ref(sh), m);
    for (auto &w : workers)
        w.join();

    // Every module thread is joined; result assembly below is
    // single-threaded but the fields are lock-annotated, so it holds
    // the (uncontended) lock for the remainder of the function.
    sync::LockGuard lk(sh.mu);
    SimResult r;
    if (sh.crashed) {
        r.status = SimStatus::Crash;
        r.message = sh.crashMessage;
    } else if (sh.deadlock) {
        r.status = SimStatus::Deadlock;
        r.deadlockCycle = sh.deadlockCycle;
        r.message = strf(
            "ERROR!!! DEADLOCK DETECTED at %llu ns (cycle %llu)! "
            "SIMULATION WILL BE STOPPED!",
            static_cast<unsigned long long>(sh.deadlockCycle * 10),
            static_cast<unsigned long long>(sh.deadlockCycle));
    } else if (sh.timeout) {
        r.status = SimStatus::Timeout;
        r.message = "co-simulation watchdog cycle limit exceeded";
    } else {
        r.status = SimStatus::Ok;
        r.totalCycles = *std::max_element(sh.finalNow.begin(),
                                          sh.finalNow.end());
    }

    for (std::size_t f = 0; f < sh.tables.size(); ++f) {
        const auto &pending = sh.tables[f].pendingData();
        if (!pending.empty()) {
            r.warnings.push_back(strf(
                "WARNING: Hls::stream '%s' contains leftover data "
                "(%zu elements)",
                design.fifos()[f].name.c_str(), pending.size()));
        }
    }

    r.stats.events = sh.events;
    r.stats.cyclesStepped = sh.cyclesStepped;
    r.stats.threadPauses = sh.pauses;
    r.stats.forcedFalse = sh.forcedFalse;
    r.stats.forcedBlind = sh.forcedBlind;
    r.stats.deadlockRetroSuspect = sh.deadlockRetroSuspect ? 1 : 0;
    // Fold the netlist checksum into the stats so the per-cycle RTL
    // evaluation cannot be optimized away.
    if (sh.netlist)
        r.stats.events += sh.netlist->checksum() & 1;
    for (std::size_t i = 0; i < design.memories().size(); ++i) {
        r.memories[design.memories()[i].name] =
            sh.pool.contents(static_cast<MemId>(i));
    }
    return r;
}

} // namespace omnisim
