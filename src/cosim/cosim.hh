/**
 * @file
 * C/RTL co-simulation substrate — the ground-truth engine and the slow
 * baseline of Fig. 8.
 *
 * One clocked thread per dataflow module executes behind a global clock
 * barrier: an op that occupies hardware cycle t may only evaluate its
 * FIFO condition once the global clock has reached t, at which point all
 * commits at cycles < t are final. Values written at cycle c are readable
 * strictly after c; slots freed at cycle c are writable strictly after c;
 * with FIFO depth S the w-th write needs the (w-S)-th read. These are
 * precisely the RTL FIFO semantics the paper's Table 2 encodes.
 *
 * The barrier uses commit-epoch gating so the clock can never advance
 * past a thread that still has to react to a commit, which makes the
 * simulation deterministic under arbitrary OS scheduling — the defining
 * property of a ground-truth reference.
 *
 * Deadlock detection: when every live thread is waiting on a FIFO
 * condition that only another thread's commit could satisfy, the design
 * has deadlocked (reported RTL-style with the stall cycle). Livelocks are
 * not detected (neither does real co-simulation, §3.2.4); the cycle
 * watchdog turns them into Timeout.
 */

#ifndef OMNISIM_COSIM_COSIM_HH
#define OMNISIM_COSIM_COSIM_HH

#include <cstdint>

#include "design/frontend.hh"
#include "runtime/result.hh"

namespace omnisim
{

/** Options controlling co-simulation. */
struct CosimOptions
{
    /** Watchdog: abort with Timeout beyond this many cycles. */
    Cycles maxCycles = 100'000'000;

    /** Abort after this many combinational (0-cycle) ops at one cycle. */
    std::uint64_t combLimit = 1'000'000;

    /**
     * Model the cost structure of real RTL co-simulation: an elaboration
     * phase builds a synthetic gate-level netlist per module, and every
     * simulated clock cycle sweeps the netlist (clocked processes are
     * evaluated on each edge). This is what makes co-simulation "hours
     * to days" in practice; correctness tests disable it.
     */
    bool modelRtlCost = true;

    /** Synthetic netlist size per module when modelRtlCost is set. */
    std::size_t gatesPerModule = 50'000;
};

/** Run cycle-accurate co-simulation of a compiled design. */
SimResult simulateCosim(const CompiledDesign &cd,
                        const CosimOptions &opts = {});

} // namespace omnisim

#endif // OMNISIM_COSIM_COSIM_HH
