// Process-wide telemetry: named counters, gauges, and log-bucketed latency
// histograms, cheap enough to stay enabled in production.
//
// Design constraints (see README "Observability"):
//   - The hot path (Counter::add, Histogram::record) takes no locks: writers
//     land on sharded cache-line-padded atomics picked by a thread-local
//     shard index, so concurrent writers do not contend.
//   - Instrument names are dotted lowercase ("serve.request_us.simulate");
//     histograms carry a unit suffix (_us, _ns, _nodes).
//   - Registry::counter/gauge/histogram take a mutex and return a reference
//     that is stable for the life of the process. Hot call sites resolve the
//     handle once (constructor / static) and keep the pointer; they must not
//     re-resolve per event.
//   - Recording respects the global telemetry switch (setTelemetryEnabled);
//     reads (value/snapshot) always work.
#ifndef OMNISIM_OBS_METRICS_HH
#define OMNISIM_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "support/sync.hh"

namespace omnisim {
namespace obs {

/// Global kill switch. Defaults to enabled; benches flip it to measure
/// instrumentation overhead. Affects writes only.
bool telemetryEnabled();
void setTelemetryEnabled(bool on);

namespace detail {
/// Stable per-thread index used to spread writers across shards.
std::size_t threadShardIndex();
} // namespace detail

/// Monotonic counter. Writers add into one of kShards cache-line-padded
/// atomics; value() folds the shards.
class Counter {
public:
    static constexpr std::size_t kShards = 16;

    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    void add(std::uint64_t n = 1) {
        if (!telemetryEnabled())
            return;
        shards_[detail::threadShardIndex() % kShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    std::uint64_t value() const {
        std::uint64_t total = 0;
        for (const auto &s : shards_)
            total += s.v.load(std::memory_order_relaxed);
        return total;
    }

    void reset() {
        for (auto &s : shards_)
            s.v.store(0, std::memory_order_relaxed);
    }

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> v{0};
    };
    Shard shards_[kShards];
};

/// Signed instantaneous value (in-flight requests, resident pool size).
/// Gauges track a live level, not a rate, so they ignore the telemetry
/// switch: a paired add/sub that straddled a toggle would wedge the level.
class Gauge {
public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void add(std::int64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
    void sub(std::int64_t n = 1) { v_.fetch_sub(n, std::memory_order_relaxed); }
    void set(std::int64_t n) { v_.store(n, std::memory_order_relaxed); }
    std::int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { set(0); }

private:
    std::atomic<std::int64_t> v_{0};
};

/// Log-bucketed histogram over non-negative integer samples (HDR-lite).
/// Values < 8 get exact unit buckets; above that, buckets are one power of
/// two split into 4 sub-buckets, bounding relative error at 12.5%. 252
/// buckets cover the full uint64 range. Writers are sharded like Counter;
/// quantiles come from a cumulative walk over a snapshot.
class Histogram {
public:
    static constexpr std::size_t kBuckets = 252;
    static constexpr std::size_t kShards = 8;

    Histogram() = default;
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    static std::size_t bucketIndex(std::uint64_t v);
    /// Inclusive value range covered by bucket `idx`.
    static std::uint64_t bucketLo(std::size_t idx);
    static std::uint64_t bucketHi(std::size_t idx);

    void record(std::uint64_t v);

    struct Snapshot {
        std::uint64_t count = 0;
        std::uint64_t sum = 0;
        std::uint64_t min = 0; ///< 0 when empty
        std::uint64_t max = 0;
        std::array<std::uint64_t, kBuckets> buckets{};

        double mean() const {
            return count ? static_cast<double>(sum) / static_cast<double>(count)
                         : 0.0;
        }
        /// q in [0,1]; linear interpolation inside the winning bucket,
        /// clamped to the observed [min,max]. 0 when empty.
        double quantile(double q) const;
    };

    Snapshot snapshot() const;
    void reset();

private:
    struct alignas(64) Shard {
        std::atomic<std::uint64_t> count{0};
        std::atomic<std::uint64_t> sum{0};
        std::array<std::atomic<std::uint64_t>, kBuckets> buckets{};
    };
    std::unique_ptr<Shard[]> shards_{new Shard[kShards]};
    // min/max use CAS loops; they are off the sharded fast path but still
    // lock-free and typically uncontended after warm-up.
    std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
    std::atomic<std::uint64_t> max_{0};
};

/// Named-instrument registry. `global()` is the process-wide instance used
/// by all instrumentation; tests may build private registries.
class Registry {
public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    static Registry &global();

    /// Find-or-create. Returned references stay valid for the registry's
    /// lifetime (instruments are never removed).
    Counter &counter(const std::string &name) OMNISIM_EXCLUDES(mu_);
    Gauge &gauge(const std::string &name) OMNISIM_EXCLUDES(mu_);
    Histogram &histogram(const std::string &name) OMNISIM_EXCLUDES(mu_);

    /// Structured JSON snapshot:
    ///   {"counters":{...},"gauges":{...},
    ///    "histograms":{name:{count,sum,min,max,mean,p50,p90,p99,
    ///                        buckets:[[lo,count],...]}}}
    std::string toJson() const OMNISIM_EXCLUDES(mu_);

    /// Prometheus text exposition (name mangled to [a-z0-9_], prefixed
    /// omnisim_; histograms rendered as summaries with quantile labels).
    std::string toPrometheus() const OMNISIM_EXCLUDES(mu_);

    /// Zero every instrument (benches isolating a measurement window).
    /// Instruments stay registered; handles stay valid.
    void resetAll() OMNISIM_EXCLUDES(mu_);

private:
    mutable sync::Mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_
        OMNISIM_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Gauge>> gauges_
        OMNISIM_GUARDED_BY(mu_);
    std::map<std::string, std::unique_ptr<Histogram>> histograms_
        OMNISIM_GUARDED_BY(mu_);
};

/// RAII latency timer: records elapsed microseconds into a histogram at
/// scope exit (covers every return path).
class ScopedLatencyUs {
public:
    explicit ScopedLatencyUs(Histogram &h)
        : h_(h), start_(std::chrono::steady_clock::now()) {}
    ~ScopedLatencyUs() {
        h_.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - start_)
                .count()));
    }
    ScopedLatencyUs(const ScopedLatencyUs &) = delete;
    ScopedLatencyUs &operator=(const ScopedLatencyUs &) = delete;

private:
    Histogram &h_;
    std::chrono::steady_clock::time_point start_;
};

/// RAII +1/-1 on a gauge (in-flight tracking).
class ScopedGauge {
public:
    explicit ScopedGauge(Gauge &g) : g_(g) { g_.add(1); }
    ~ScopedGauge() { g_.sub(1); }
    ScopedGauge(const ScopedGauge &) = delete;
    ScopedGauge &operator=(const ScopedGauge &) = delete;

private:
    Gauge &g_;
};

} // namespace obs
} // namespace omnisim

#endif // OMNISIM_OBS_METRICS_HH
