#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#include "support/sync.hh"

#ifdef _WIN32
#include <process.h>
#define OMNISIM_GETPID _getpid
#else
#include <unistd.h>
#define OMNISIM_GETPID getpid
#endif

namespace omnisim {
namespace obs {

namespace {

constexpr std::size_t kRingCapacity = 16384;
constexpr std::size_t kNameCapacity = 48;

struct TraceEvent {
    char name[kNameCapacity]; // NUL-terminated copy; long names truncate
    std::uint64_t startNs;
    std::uint64_t endNs;
    CorrelationId cid;
};

struct ThreadRing {
    sync::Mutex mu;
    /// Sized kRingCapacity once at construction (before the ring is
    /// published); after that only entries mutate, under mu.
    std::vector<TraceEvent> events;
    std::size_t head OMNISIM_GUARDED_BY(mu) = 0;  // next write slot
    std::size_t count OMNISIM_GUARDED_BY(mu) = 0; // valid entries
    std::uint64_t dropped OMNISIM_GUARDED_BY(mu) = 0; // overwritten
    /// traceStart() generation when last used.
    std::uint64_t session OMNISIM_GUARDED_BY(mu) = 0;
    std::uint32_t tid = 0; // assigned once before publication
};

struct TraceState {
    std::atomic<bool> enabled{false};
    // Session generation: bumping it on traceStart() lazily invalidates all
    // rings, so starting a trace never has to touch other threads' rings.
    std::atomic<std::uint64_t> session{0};
    std::atomic<std::uint64_t> epochNs{0};
    sync::Mutex mu; // guards rings registry + nextTid
    std::vector<std::shared_ptr<ThreadRing>> rings OMNISIM_GUARDED_BY(mu);
    std::uint32_t nextTid OMNISIM_GUARDED_BY(mu) = 1;
};

TraceState &state() {
    static TraceState *st = new TraceState; // leaked: outlive all threads
    return *st;
}

std::uint64_t steadyNowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

ThreadRing &localRing() {
    thread_local std::shared_ptr<ThreadRing> ring = [] {
        auto r = std::make_shared<ThreadRing>();
        r->events.resize(kRingCapacity);
        TraceState &st = state();
        sync::LockGuard lk(st.mu);
        r->tid = st.nextTid++;
        st.rings.push_back(r);
        return r;
    }();
    return *ring;
}

} // namespace

bool traceEnabled() {
    return state().enabled.load(std::memory_order_relaxed);
}

void traceStart() {
    TraceState &st = state();
    st.enabled.store(false, std::memory_order_relaxed);
    st.epochNs.store(steadyNowNs(), std::memory_order_relaxed);
    st.session.fetch_add(1, std::memory_order_relaxed);
    st.enabled.store(true, std::memory_order_relaxed);
}

void traceStop() {
    state().enabled.store(false, std::memory_order_relaxed);
}

namespace detail {

std::uint64_t traceNowNs() { return steadyNowNs(); }

void recordSpan(const char *name, std::uint64_t startNs, std::uint64_t endNs,
                CorrelationId cid) {
    TraceState &st = state();
    const std::uint64_t session = st.session.load(std::memory_order_relaxed);
    ThreadRing &r = localRing();
    sync::LockGuard lk(r.mu);
    if (r.session != session) {
        r.head = 0;
        r.count = 0;
        r.dropped = 0;
        r.session = session;
    }
    if (r.count == kRingCapacity)
        ++r.dropped;
    else
        ++r.count;
    TraceEvent &e = r.events[r.head];
    std::strncpy(e.name, name, kNameCapacity - 1);
    e.name[kNameCapacity - 1] = '\0';
    e.startNs = startNs;
    e.endNs = endNs < startNs ? startNs : endNs;
    e.cid = cid;
    r.head = (r.head + 1) % kRingCapacity;
}

} // namespace detail

namespace {

struct ExportEvent {
    std::string name;
    std::uint64_t startNs;
    std::uint64_t endNs;
    std::uint32_t tid;
    CorrelationId cid;
};

std::vector<ExportEvent> collectEvents(std::uint64_t &droppedOut) {
    TraceState &st = state();
    const std::uint64_t session = st.session.load(std::memory_order_relaxed);
    std::vector<std::shared_ptr<ThreadRing>> rings;
    {
        sync::LockGuard lk(st.mu);
        rings = st.rings;
    }
    std::vector<ExportEvent> out;
    droppedOut = 0;
    for (const auto &rp : rings) {
        ThreadRing &r = *rp;
        sync::LockGuard lk(r.mu);
        if (r.session != session || r.count == 0)
            continue;
        droppedOut += r.dropped;
        // Oldest live entry sits at head-count (mod capacity).
        const std::size_t start =
            (r.head + kRingCapacity - r.count) % kRingCapacity;
        for (std::size_t i = 0; i < r.count; ++i) {
            const TraceEvent &e = r.events[(start + i) % kRingCapacity];
            out.push_back({e.name, e.startNs, e.endNs, r.tid, e.cid});
        }
    }
    std::sort(out.begin(), out.end(),
              [](const ExportEvent &a, const ExportEvent &b) {
                  if (a.startNs != b.startNs)
                      return a.startNs < b.startNs;
                  return a.tid < b.tid;
              });
    return out;
}

void appendEscaped(std::string &out, const std::string &s) {
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out += c;
        }
    }
}

void appendMicros(std::string &out, std::uint64_t ns) {
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%llu.%03u",
                  static_cast<unsigned long long>(ns / 1000),
                  static_cast<unsigned>(ns % 1000));
    out += buf;
}

} // namespace

std::size_t traceEventCount() {
    std::uint64_t dropped = 0;
    return collectEvents(dropped).size();
}

std::uint64_t traceDroppedCount() {
    std::uint64_t dropped = 0;
    collectEvents(dropped);
    return dropped;
}

std::string traceJson() {
    std::uint64_t dropped = 0;
    const std::vector<ExportEvent> events = collectEvents(dropped);
    const std::uint64_t epoch =
        state().epochNs.load(std::memory_order_relaxed);
    const int pid = OMNISIM_GETPID();

    std::string out = "{\"displayTimeUnit\":\"ms\",\"omnisimDropped\":" +
                      std::to_string(dropped) + ",\"traceEvents\":[";
    out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" +
           std::to_string(pid) +
           ",\"tid\":0,\"args\":{\"name\":\"omnisim\"}}";
    for (const ExportEvent &e : events) {
        // Spans in flight across traceStart() can predate the epoch; clamp.
        const std::uint64_t rel = e.startNs > epoch ? e.startNs - epoch : 0;
        out += ",{\"name\":\"";
        appendEscaped(out, e.name);
        out += "\",\"cat\":\"omnisim\",\"ph\":\"X\",\"ts\":";
        appendMicros(out, rel);
        out += ",\"dur\":";
        appendMicros(out, e.endNs - e.startNs);
        out += ",\"pid\":" + std::to_string(pid) +
               ",\"tid\":" + std::to_string(e.tid) +
               ",\"args\":{\"cid\":" + std::to_string(e.cid) + "}}";
    }
    out += "]}";
    return out;
}

bool traceWriteJson(const std::string &path) {
    const std::string json = traceJson();
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f)
        return false;
    const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
    const bool ok = written == json.size() && std::fclose(f) == 0;
    if (!ok && written != json.size())
        std::fclose(f);
    return ok;
}

} // namespace obs
} // namespace omnisim
