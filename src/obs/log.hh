// Leveled structured logging: one JSON object per event, stamped with a
// monotonic per-thread timestamp, the thread id, the current correlation
// id (obs/context.hh), a dotted event name, and a printf-formatted
// message.
//
//   {"ts_ns":123456,"lvl":"warn","tid":2,"cid":7,
//    "event":"store.publish","msg":"cannot write '...'"}
//
// Design constraints (see README "Diagnostics"):
//   - OMNISIM_LOG costs one relaxed atomic load when logging is
//     disabled; format arguments are not evaluated.
//   - When enabled, every event at debug or above — regardless of the
//     sink level filter — is recorded into the flight recorder's fixed
//     per-thread ring (obs/flight.hh) so crash dumps always carry the
//     pre-sink-filter tail. Trace events are exempt (kFlightMinLevel):
//     they live in per-probe / per-chunk engine loops, and a trace
//     event the sink filters out costs two relaxed loads — no
//     formatting, no ring write. Recording formats into fixed
//     thread-local buffers: the filtered path performs no heap
//     allocation.
//   - Events at or above the sink level are serialized to the active
//     sink: a --log-out file, a custom callback (tests), or the legacy
//     human-readable stderr lines ("warn: ...") that warn()/inform()
//     always produced — still gated by setLogQuiet().
//   - A LogCapture scope additionally collects the serialized JSON of
//     warn+ events on the calling thread; the serve layer uses one per
//     request to echo the warning tail in error responses.
#ifndef OMNISIM_OBS_LOG_HH
#define OMNISIM_OBS_LOG_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace omnisim {
namespace obs {

enum class LogLevel : std::uint8_t {
    Trace = 0,
    Debug = 1,
    Info = 2,
    Warn = 3,
    Error = 4,
    Off = 5, ///< Sink threshold only; events cannot carry this level.
};

/// Lowest level the flight recorder ring keeps. Trace events never
/// reach the ring: they are hot-loop diagnostics, visible only when the
/// sink level (or a capture) asks for them.
inline constexpr LogLevel kFlightMinLevel = LogLevel::Debug;

/// Stable lowercase name ("trace", ..., "off").
const char *logLevelName(LogLevel level);

/// Parse a CLI level name. @return false on unknown names (out untouched).
bool parseLogLevel(const std::string &name, LogLevel &out);

/// Master switch. Disabled (the default for library embedders until the
/// CLI or a test arms it) makes OMNISIM_LOG a single relaxed load —
/// events are neither formatted, ring-recorded, nor sunk.
bool logEnabled();
void setLogEnabled(bool on);

/// Sink threshold: events below it skip the sink (and captures) but
/// still reach the flight ring. Default Warn.
LogLevel logLevel();
void setLogLevel(LogLevel level);

/// Install a custom sink receiving each serialized event (one JSON
/// object, no trailing newline), called with the emitting thread's
/// context. Pass nullptr to restore the legacy stderr sink. The sink
/// must be callable concurrently or do its own locking.
void setLogSink(std::function<void(const std::string &)> sink);

/// Open `path` for appending and sink JSON lines to it (the CLI's
/// --log-out). Writes are mutex-serialized and flushed per event.
/// @return false when the file cannot be opened (sink unchanged).
bool setLogFileSink(const std::string &path);

/// Close any file sink and restore the legacy stderr sink.
void resetLogSink();

namespace detail {
/// Format and dispatch one event: flight ring always, sink + captures
/// when level >= logLevel(). Never throws.
void logEvent(LogLevel level, const char *event, const char *fmt, ...)
    __attribute__((format(printf, 3, 4)));
} // namespace detail

/// Collect warn+ events emitted on the calling thread while in scope
/// (innermost capture wins; scopes nest). Lines are the serialized JSON
/// objects, oldest first, capped at kMaxLines to bound error responses.
class LogCapture {
public:
    static constexpr std::size_t kMaxLines = 32;

    explicit LogCapture(LogLevel min = LogLevel::Warn);
    ~LogCapture();
    LogCapture(const LogCapture &) = delete;
    LogCapture &operator=(const LogCapture &) = delete;

    const std::vector<std::string> &lines() const { return lines_; }
    /// Events not kept because the cap was reached.
    std::uint64_t truncated() const { return truncated_; }

private:
    friend void captureLine(LogLevel level, const std::string &line);
    LogLevel min_;
    std::vector<std::string> lines_;
    std::uint64_t truncated_ = 0;
    LogCapture *prev_;
};

} // namespace obs
} // namespace omnisim

/// Emit one structured event. `event` is a dotted lowercase name
/// ("serve.request", "relax.admit"); the remaining arguments are a
/// printf message. One relaxed load when logging is disabled; format
/// arguments are only evaluated when enabled.
#define OMNISIM_LOG(level, event, ...)                                         \
    do {                                                                       \
        if (::omnisim::obs::logEnabled())                                      \
            ::omnisim::obs::detail::logEvent((level), (event), __VA_ARGS__);   \
    } while (0)

#define OMNISIM_LOG_TRACE(event, ...)                                          \
    OMNISIM_LOG(::omnisim::obs::LogLevel::Trace, event, __VA_ARGS__)
#define OMNISIM_LOG_DEBUG(event, ...)                                          \
    OMNISIM_LOG(::omnisim::obs::LogLevel::Debug, event, __VA_ARGS__)
#define OMNISIM_LOG_INFO(event, ...)                                           \
    OMNISIM_LOG(::omnisim::obs::LogLevel::Info, event, __VA_ARGS__)
#define OMNISIM_LOG_WARN(event, ...)                                           \
    OMNISIM_LOG(::omnisim::obs::LogLevel::Warn, event, __VA_ARGS__)
#define OMNISIM_LOG_ERROR(event, ...)                                          \
    OMNISIM_LOG(::omnisim::obs::LogLevel::Error, event, __VA_ARGS__)

#endif // OMNISIM_OBS_LOG_HH
