#include "obs/metrics.hh"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <vector>

namespace omnisim {
namespace obs {

namespace {

std::atomic<bool> gTelemetryEnabled{true};

} // namespace

bool telemetryEnabled() {
    return gTelemetryEnabled.load(std::memory_order_relaxed);
}

void setTelemetryEnabled(bool on) {
    gTelemetryEnabled.store(on, std::memory_order_relaxed);
}

namespace detail {

std::size_t threadShardIndex() {
    static std::atomic<std::size_t> next{0};
    thread_local const std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

} // namespace detail

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

std::size_t Histogram::bucketIndex(std::uint64_t v) {
    if (v < 8)
        return static_cast<std::size_t>(v);
    // msb in [3,63]; 4 sub-buckets per power of two from the two bits below
    // the msb. Max index: 8 + (63-3)*4 + 3 = 251.
    const int msb = std::bit_width(v) - 1;
    const std::uint64_t sub = (v >> (msb - 2)) & 3;
    return 8 + static_cast<std::size_t>(msb - 3) * 4 +
           static_cast<std::size_t>(sub);
}

std::uint64_t Histogram::bucketLo(std::size_t idx) {
    if (idx < 8)
        return idx;
    const std::size_t g = (idx - 8) / 4;
    const std::uint64_t sub = (idx - 8) % 4;
    const int msb = static_cast<int>(g) + 3;
    return (std::uint64_t{1} << msb) + (sub << (msb - 2));
}

std::uint64_t Histogram::bucketHi(std::size_t idx) {
    if (idx < 8)
        return idx;
    if (idx + 1 >= kBuckets)
        return ~std::uint64_t{0};
    return bucketLo(idx + 1) - 1;
}

void Histogram::record(std::uint64_t v) {
    if (!telemetryEnabled())
        return;
    Shard &s = shards_[detail::threadShardIndex() % kShards];
    s.count.fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
    s.buckets[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);

    std::uint64_t cur = min_.load(std::memory_order_relaxed);
    while (v < cur &&
           !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
    cur = max_.load(std::memory_order_relaxed);
    while (v > cur &&
           !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
}

Histogram::Snapshot Histogram::snapshot() const {
    Snapshot snap;
    for (std::size_t i = 0; i < kShards; ++i) {
        const Shard &s = shards_[i];
        snap.count += s.count.load(std::memory_order_relaxed);
        snap.sum += s.sum.load(std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBuckets; ++b)
            snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
    if (snap.count) {
        snap.min = min_.load(std::memory_order_relaxed);
        snap.max = max_.load(std::memory_order_relaxed);
        if (snap.min == ~std::uint64_t{0})
            snap.min = 0; // racy snapshot during first record; degrade sanely
    }
    return snap;
}

void Histogram::reset() {
    for (std::size_t i = 0; i < kShards; ++i) {
        Shard &s = shards_[i];
        s.count.store(0, std::memory_order_relaxed);
        s.sum.store(0, std::memory_order_relaxed);
        for (std::size_t b = 0; b < kBuckets; ++b)
            s.buckets[b].store(0, std::memory_order_relaxed);
    }
    min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
    if (count == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The extremes are tracked exactly; don't pay bucket error there.
    if (q == 0.0)
        return static_cast<double>(min);
    if (q == 1.0)
        return static_cast<double>(max);
    const double rank = q * static_cast<double>(count - 1);
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < kBuckets; ++b) {
        const std::uint64_t c = buckets[b];
        if (c == 0)
            continue;
        if (rank < static_cast<double>(cum + c)) {
            const double within = (rank - static_cast<double>(cum)) + 0.5;
            const double frac = within / static_cast<double>(c);
            const double lo = static_cast<double>(bucketLo(b));
            const double hi = static_cast<double>(bucketHi(b)) + 1.0;
            double v = lo + frac * (hi - lo);
            v = std::min(v, static_cast<double>(max));
            v = std::max(v, static_cast<double>(min));
            return v;
        }
        cum += c;
    }
    return static_cast<double>(max);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

Registry &Registry::global() {
    static Registry instance;
    return instance;
}

Counter &Registry::counter(const std::string &name) {
    sync::LockGuard lk(mu_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge &Registry::gauge(const std::string &name) {
    sync::LockGuard lk(mu_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram &Registry::histogram(const std::string &name) {
    sync::LockGuard lk(mu_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

void Registry::resetAll() {
    sync::LockGuard lk(mu_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second->reset();
}

namespace {

void appendJsonString(std::string &out, const std::string &s) {
    out += '"';
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

void appendDouble(std::string &out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", v);
    out += buf;
}

/// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Dots become
/// underscores; anything else unexpected does too.
std::string promName(const std::string &name) {
    std::string out = "omnisim_";
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    return out;
}

} // namespace

std::string Registry::toJson() const {
    sync::LockGuard lk(mu_);
    std::string out = "{\"counters\":{";
    bool first = true;
    for (const auto &kv : counters_) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, kv.first);
        out += ':';
        out += std::to_string(kv.second->value());
    }
    out += "},\"gauges\":{";
    first = true;
    for (const auto &kv : gauges_) {
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, kv.first);
        out += ':';
        out += std::to_string(kv.second->value());
    }
    out += "},\"histograms\":{";
    first = true;
    for (const auto &kv : histograms_) {
        const Histogram::Snapshot snap = kv.second->snapshot();
        if (!first)
            out += ',';
        first = false;
        appendJsonString(out, kv.first);
        out += ":{\"count\":" + std::to_string(snap.count);
        out += ",\"sum\":" + std::to_string(snap.sum);
        out += ",\"min\":" + std::to_string(snap.min);
        out += ",\"max\":" + std::to_string(snap.max);
        out += ",\"mean\":";
        appendDouble(out, snap.mean());
        out += ",\"p50\":";
        appendDouble(out, snap.quantile(0.50));
        out += ",\"p90\":";
        appendDouble(out, snap.quantile(0.90));
        out += ",\"p99\":";
        appendDouble(out, snap.quantile(0.99));
        out += ",\"buckets\":[";
        bool firstBucket = true;
        for (std::size_t b = 0; b < Histogram::kBuckets; ++b) {
            if (!snap.buckets[b])
                continue;
            if (!firstBucket)
                out += ',';
            firstBucket = false;
            out += '[' + std::to_string(Histogram::bucketLo(b)) + ',' +
                   std::to_string(snap.buckets[b]) + ']';
        }
        out += "]}";
    }
    out += "}}";
    return out;
}

std::string Registry::toPrometheus() const {
    sync::LockGuard lk(mu_);
    std::string out;
    for (const auto &kv : counters_) {
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " counter\n";
        out += n + ' ' + std::to_string(kv.second->value()) + '\n';
    }
    for (const auto &kv : gauges_) {
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " gauge\n";
        out += n + ' ' + std::to_string(kv.second->value()) + '\n';
    }
    for (const auto &kv : histograms_) {
        const Histogram::Snapshot snap = kv.second->snapshot();
        const std::string n = promName(kv.first);
        out += "# TYPE " + n + " summary\n";
        for (double q : {0.50, 0.90, 0.99}) {
            char qb[16];
            std::snprintf(qb, sizeof(qb), "%.2f", q);
            out += n + "{quantile=\"" + qb + "\"} ";
            appendDouble(out, snap.quantile(q));
            out += '\n';
        }
        out += n + "_sum " + std::to_string(snap.sum) + '\n';
        out += n + "_count " + std::to_string(snap.count) + '\n';
    }
    return out;
}

} // namespace obs
} // namespace omnisim
