#include "obs/flight.hh"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <memory>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <csignal>
#include <unistd.h>
#define OMNISIM_FLIGHT_HAVE_SIGNALS 1
#else
#include <cstdlib>
#define OMNISIM_FLIGHT_HAVE_SIGNALS 0
#endif

#include "obs/metrics.hh"
#include "support/sync.hh"

namespace omnisim {
namespace obs {

namespace {

/// Tiny spinlock: each thread's ring is touched by its owner on every
/// event and by a dumper a handful of times per process lifetime, so
/// contention is effectively zero and a mutex would be overkill.
struct OMNISIM_CAPABILITY("spinlock") SpinLock {
    std::atomic_flag flag = ATOMIC_FLAG_INIT;

    void lock() OMNISIM_ACQUIRE() {
        while (flag.test_and_set(std::memory_order_acquire)) {
        }
    }

    bool tryLockBounded(int spins) OMNISIM_TRY_ACQUIRE(true) {
        for (int i = 0; i < spins; ++i) {
            if (!flag.test_and_set(std::memory_order_acquire))
                return true;
        }
        return false;
    }

    void unlock() OMNISIM_RELEASE() { flag.clear(std::memory_order_release); }
};

struct EventRec {
    std::uint64_t seq = 0;
    std::uint64_t tsNs = 0;
    CorrelationId cid = 0;
    LogLevel level = LogLevel::Trace;
    char event[48] = {};
    char msg[160] = {};
};

struct SpanRec {
    char name[48] = {};
    std::uint64_t startNs = 0;
};

struct FlightThread {
    SpinLock lock;
    std::uint32_t tid = 0; ///< assigned once before publication

    EventRec ring[kFlightRingEvents] OMNISIM_GUARDED_BY(lock);
    /// Next slot to write.
    std::size_t head OMNISIM_GUARDED_BY(lock) = 0;
    /// Live records, <= kFlightRingEvents.
    std::size_t count OMNISIM_GUARDED_BY(lock) = 0;
    /// Per-thread monotone event counter.
    std::uint64_t seq OMNISIM_GUARDED_BY(lock) = 0;
    std::uint64_t dropped OMNISIM_GUARDED_BY(lock) = 0;

    SpanRec spans[kFlightSpanDepth] OMNISIM_GUARDED_BY(lock);
    /// May exceed kFlightSpanDepth (counted past the stored prefix).
    std::size_t spanDepth OMNISIM_GUARDED_BY(lock) = 0;
};

struct FlightRegistry {
    sync::Mutex mu;
    std::vector<std::shared_ptr<FlightThread>> threads
        OMNISIM_GUARDED_BY(mu);
    std::uint32_t nextTid OMNISIM_GUARDED_BY(mu) = 1;
};

FlightRegistry &registry() {
    static FlightRegistry *reg = new FlightRegistry; // outlives all threads
    return *reg;
}

FlightThread &localThread() {
    thread_local std::shared_ptr<FlightThread> self = [] {
        auto t = std::make_shared<FlightThread>();
        FlightRegistry &reg = registry();
        sync::LockGuard lk(reg.mu);
        t->tid = reg.nextTid++;
        reg.threads.push_back(t);
        return t;
    }();
    return *self;
}

sync::Mutex crashDirMu;
std::string crashDir OMNISIM_GUARDED_BY(crashDirMu) = ".";

/// Once a crash dump has been written, signal handlers stay quiet: the
/// SIGABRT raised by panicImpl's abort() must not overwrite the dump
/// panicImpl just produced. Direct writeCrashDump calls still proceed.
std::atomic<bool> dumpWritten{false};
/// Re-entrancy guard for a signal landing mid-dump.
std::atomic<bool> dumping{false};

void appendEscaped(std::string &out, const char *s) {
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else if (c == '\r') {
            out += "\\r";
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out += c;
        }
    }
}

void copyTruncated(char *dst, std::size_t cap, const char *src) {
    std::size_t i = 0;
    for (; src[i] && i + 1 < cap; ++i)
        dst[i] = src[i];
    dst[i] = '\0';
}

struct DumpEvent {
    EventRec rec;
    std::uint32_t tid = 0;
};

#if OMNISIM_FLIGHT_HAVE_SIGNALS
const int kFatalSignals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};

void fatalSignalHandler(int sig) {
    // Best-effort, knowingly not async-signal-safe: the process is
    // terminating either way, and the dump is the difference between a
    // bug report with a narrative and one without.
    if (!dumpWritten.load(std::memory_order_acquire) &&
        !dumping.load(std::memory_order_acquire)) {
        char reason[64];
        std::snprintf(reason, sizeof(reason), "signal %d", sig);
        writeCrashDump(reason, currentCorrelationId());
    }
    std::signal(sig, SIG_DFL);
    raise(sig);
}
#endif

} // namespace

namespace detail {

void flightRecord(LogLevel level, CorrelationId cid, std::uint64_t tsNs,
                  const char *event, const char *msg) {
    FlightThread &t = localThread();
    t.lock.lock();
    EventRec &r = t.ring[t.head];
    r.seq = t.seq++;
    r.tsNs = tsNs;
    r.cid = cid;
    r.level = level;
    copyTruncated(r.event, sizeof(r.event), event);
    copyTruncated(r.msg, sizeof(r.msg), msg);
    t.head = (t.head + 1) % kFlightRingEvents;
    if (t.count < kFlightRingEvents)
        ++t.count;
    else
        ++t.dropped;
    t.lock.unlock();
}

void flightSpanEnter(const char *name, std::uint64_t startNs) {
    FlightThread &t = localThread();
    t.lock.lock();
    if (t.spanDepth < kFlightSpanDepth) {
        SpanRec &s = t.spans[t.spanDepth];
        copyTruncated(s.name, sizeof(s.name), name);
        s.startNs = startNs;
    }
    ++t.spanDepth;
    t.lock.unlock();
}

void flightSpanExit() {
    FlightThread &t = localThread();
    t.lock.lock();
    if (t.spanDepth > 0)
        --t.spanDepth;
    t.lock.unlock();
}

std::uint32_t flightThreadId() { return localThread().tid; }

} // namespace detail

std::size_t flightEventCount() {
    FlightRegistry &reg = registry();
    sync::LockGuard lk(reg.mu);
    std::size_t n = 0;
    for (auto &t : reg.threads) {
        t->lock.lock();
        n += t->count;
        t->lock.unlock();
    }
    return n;
}

std::uint64_t flightDroppedCount() {
    FlightRegistry &reg = registry();
    sync::LockGuard lk(reg.mu);
    std::uint64_t n = 0;
    for (auto &t : reg.threads) {
        t->lock.lock();
        n += t->dropped;
        t->lock.unlock();
    }
    return n;
}

void flightReset() {
    FlightRegistry &reg = registry();
    sync::LockGuard lk(reg.mu);
    for (auto &t : reg.threads) {
        t->lock.lock();
        t->head = 0;
        t->count = 0;
        t->seq = 0;
        t->dropped = 0;
        t->lock.unlock();
    }
}

std::string flightDumpJson(const std::string &reason, CorrelationId cid) {
    // Snapshot every thread's ring and span stack first, holding each
    // spinlock only long enough to copy POD records. A thread that died
    // holding its lock (we are on a crash path) is skipped after a
    // bounded spin rather than deadlocking the dump.
    std::vector<DumpEvent> events;
    struct SpanStack {
        std::uint32_t tid;
        std::vector<SpanRec> stack;
        std::size_t depth;
    };
    std::vector<SpanStack> spanStacks;
    std::uint64_t dropped = 0;
    std::size_t skippedThreads = 0;

    {
        FlightRegistry &reg = registry();
        sync::LockGuard lk(reg.mu);
        events.reserve(reg.threads.size() * kFlightRingEvents);
        for (auto &t : reg.threads) {
            if (!t->lock.tryLockBounded(1 << 20)) {
                ++skippedThreads;
                continue;
            }
            const std::size_t start =
                (t->head + kFlightRingEvents - t->count) % kFlightRingEvents;
            for (std::size_t i = 0; i < t->count; ++i) {
                DumpEvent ev;
                ev.rec = t->ring[(start + i) % kFlightRingEvents];
                ev.tid = t->tid;
                events.push_back(ev);
            }
            dropped += t->dropped;
            if (t->spanDepth > 0) {
                SpanStack ss;
                ss.tid = t->tid;
                ss.depth = t->spanDepth;
                const std::size_t named =
                    std::min(t->spanDepth, kFlightSpanDepth);
                ss.stack.assign(t->spans, t->spans + named);
                spanStacks.push_back(std::move(ss));
            }
            t->lock.unlock();
        }
    }

    // Global timeline, stable per thread: ties broken by (tid, seq) so
    // each thread's tail stays in emission order.
    std::sort(events.begin(), events.end(),
              [](const DumpEvent &a, const DumpEvent &b) {
                  if (a.rec.tsNs != b.rec.tsNs)
                      return a.rec.tsNs < b.rec.tsNs;
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  return a.rec.seq < b.rec.seq;
              });

    std::string out;
    out.reserve(4096 + events.size() * 192);
    out += "{\"schema\":\"";
    out += kFlightSchema;
    out += "\",\"pid\":";
#if OMNISIM_FLIGHT_HAVE_SIGNALS
    out += std::to_string(static_cast<long>(::getpid()));
#else
    out += "0";
#endif
    out += ",\"reason\":\"";
    appendEscaped(out, reason.c_str());
    out += "\",\"correlation_id\":";
    out += std::to_string(cid);
    out += ",\"dropped\":";
    out += std::to_string(dropped);
    out += ",\"skipped_threads\":";
    out += std::to_string(skippedThreads);
    out += ",\"events\":[";
    for (std::size_t i = 0; i < events.size(); ++i) {
        const DumpEvent &ev = events[i];
        if (i)
            out += ',';
        out += "{\"seq\":";
        out += std::to_string(ev.rec.seq);
        out += ",\"ts_ns\":";
        out += std::to_string(ev.rec.tsNs);
        out += ",\"tid\":";
        out += std::to_string(ev.tid);
        out += ",\"lvl\":\"";
        out += logLevelName(ev.rec.level);
        out += "\",\"cid\":";
        out += std::to_string(ev.rec.cid);
        out += ",\"event\":\"";
        appendEscaped(out, ev.rec.event);
        out += "\",\"msg\":\"";
        appendEscaped(out, ev.rec.msg);
        out += "\"}";
    }
    out += "],\"spans\":[";
    for (std::size_t i = 0; i < spanStacks.size(); ++i) {
        const SpanStack &ss = spanStacks[i];
        if (i)
            out += ',';
        out += "{\"tid\":";
        out += std::to_string(ss.tid);
        out += ",\"depth\":";
        out += std::to_string(ss.depth);
        out += ",\"stack\":[";
        for (std::size_t j = 0; j < ss.stack.size(); ++j) {
            if (j)
                out += ',';
            out += "{\"name\":\"";
            appendEscaped(out, ss.stack[j].name);
            out += "\",\"start_ns\":";
            out += std::to_string(ss.stack[j].startNs);
            out += '}';
        }
        out += "]}";
    }
    out += "],\"metrics\":";
    out += Registry::global().toJson();
    out += '}';
    return out;
}

void setCrashDumpDir(const std::string &dir) {
    sync::LockGuard lk(crashDirMu);
    crashDir = dir.empty() ? "." : dir;
}

std::string writeCrashDump(const std::string &reason, CorrelationId cid) {
    if (dumping.exchange(true, std::memory_order_acq_rel))
        return std::string();

    std::string path;
    {
        sync::LockGuard lk(crashDirMu);
        path = crashDir;
    }
#if OMNISIM_FLIGHT_HAVE_SIGNALS
    const long pid = static_cast<long>(::getpid());
#else
    const long pid = 0;
#endif
    path += "/omnisim-crash-" + std::to_string(pid) + ".json";

    const std::string doc = flightDumpJson(reason, cid);
    std::FILE *f = std::fopen(path.c_str(), "wb");
    if (!f) {
        dumping.store(false, std::memory_order_release);
        return std::string();
    }
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    dumpWritten.store(true, std::memory_order_release);
    dumping.store(false, std::memory_order_release);
    return path;
}

void installCrashHandlers() {
#if OMNISIM_FLIGHT_HAVE_SIGNALS
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = fatalSignalHandler;
    sigemptyset(&sa.sa_mask);
    for (const int sig : kFatalSignals)
        sigaction(sig, &sa, nullptr);
#endif
}

} // namespace obs
} // namespace omnisim
