#include "obs/log.hh"

#include <atomic>
#include <chrono>
#include <cstdarg>
#include <cstdio>
#include <cstring>

#include "obs/context.hh"
#include "obs/flight.hh"
#include "support/logging.hh"
#include "support/sync.hh"

namespace omnisim {
namespace obs {

namespace {

std::atomic<bool> enabledFlag{false};
std::atomic<std::uint8_t> levelFlag{
    static_cast<std::uint8_t>(LogLevel::Warn)};

/// Sink state. The mutex serializes sink swaps and file writes; the
/// formatting work happens outside it on thread-local buffers.
struct SinkState {
    sync::Mutex mu;
    std::function<void(const std::string &)> custom
        OMNISIM_GUARDED_BY(mu); // empty => legacy/file
    std::FILE *file OMNISIM_GUARDED_BY(mu) = nullptr;
};

SinkState &sinkState() {
    static SinkState *st = new SinkState; // leaked: outlive all threads
    return *st;
}

thread_local LogCapture *activeCapture = nullptr;

std::uint64_t nowNs() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

void appendJsonEscaped(std::string &out, const char *s) {
    for (; *s; ++s) {
        const char c = *s;
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (c == '\n') {
            out += "\\n";
        } else if (c == '\t') {
            out += "\\t";
        } else if (c == '\r') {
            out += "\\r";
        } else if (static_cast<unsigned char>(c) >= 0x20) {
            out += c;
        }
        // Remaining control characters are dropped: the stream must
        // stay one parseable JSON object per line.
    }
}

} // namespace

const char *logLevelName(LogLevel level) {
    switch (level) {
    case LogLevel::Trace:
        return "trace";
    case LogLevel::Debug:
        return "debug";
    case LogLevel::Info:
        return "info";
    case LogLevel::Warn:
        return "warn";
    case LogLevel::Error:
        return "error";
    case LogLevel::Off:
        break;
    }
    return "off";
}

bool parseLogLevel(const std::string &name, LogLevel &out) {
    for (const LogLevel l :
         {LogLevel::Trace, LogLevel::Debug, LogLevel::Info, LogLevel::Warn,
          LogLevel::Error, LogLevel::Off}) {
        if (name == logLevelName(l)) {
            out = l;
            return true;
        }
    }
    return false;
}

bool logEnabled() { return enabledFlag.load(std::memory_order_relaxed); }

void setLogEnabled(bool on) {
    enabledFlag.store(on, std::memory_order_relaxed);
}

LogLevel logLevel() {
    return static_cast<LogLevel>(levelFlag.load(std::memory_order_relaxed));
}

void setLogLevel(LogLevel level) {
    levelFlag.store(static_cast<std::uint8_t>(level),
                    std::memory_order_relaxed);
}

void setLogSink(std::function<void(const std::string &)> sink) {
    SinkState &st = sinkState();
    sync::LockGuard lk(st.mu);
    if (st.file) {
        std::fclose(st.file);
        st.file = nullptr;
    }
    st.custom = std::move(sink);
}

bool setLogFileSink(const std::string &path) {
    std::FILE *f = std::fopen(path.c_str(), "ab");
    if (!f)
        return false;
    SinkState &st = sinkState();
    sync::LockGuard lk(st.mu);
    if (st.file)
        std::fclose(st.file);
    st.file = f;
    st.custom = nullptr;
    return true;
}

void resetLogSink() { setLogSink(nullptr); }

void captureLine(LogLevel level, const std::string &line) {
    for (LogCapture *c = activeCapture; c; c = c->prev_) {
        if (level < c->min_)
            continue;
        if (c->lines_.size() >= LogCapture::kMaxLines)
            ++c->truncated_;
        else
            c->lines_.push_back(line);
    }
}

LogCapture::LogCapture(LogLevel min) : min_(min), prev_(activeCapture) {
    activeCapture = this;
}

LogCapture::~LogCapture() { activeCapture = prev_; }

namespace detail {

void logEvent(LogLevel level, const char *event, const char *fmt, ...) {
    if (level >= LogLevel::Off)
        level = LogLevel::Error;

    // Decide every destination before any formatting. Trace-level events
    // skip the flight ring (kFlightMinLevel): they sit in per-chunk /
    // per-probe engine loops where paying vsnprintf + a ring write per
    // event — only to be overwritten moments later — costs several
    // percent of serve throughput. A trace event filtered from the sink
    // therefore returns here, after two relaxed loads.
    const bool wantRing = level >= kFlightMinLevel;
    const bool wantSink = level >= logLevel();
    const bool wantCapture = activeCapture != nullptr &&
                             level >= LogLevel::Warn;
    if (!wantRing && !wantSink && !wantCapture)
        return;

    // Fixed-size, reused buffers: the filtered path (ring record only)
    // allocates nothing after the thread's first event.
    thread_local char msg[512];
    va_list ap;
    va_start(ap, fmt);
    const int n = std::vsnprintf(msg, sizeof(msg), fmt, ap);
    va_end(ap);
    if (n < 0)
        std::snprintf(msg, sizeof(msg), "<format error: %s>", fmt);

    const std::uint64_t tsNs = nowNs();
    const CorrelationId cid = currentCorrelationId();
    if (wantRing)
        flightRecord(level, cid, tsNs, event, msg);

    if (!wantSink && !wantCapture)
        return;

    thread_local std::string line;
    line.clear();
    line += "{\"ts_ns\":";
    line += std::to_string(tsNs);
    line += ",\"lvl\":\"";
    line += logLevelName(level);
    line += "\",\"tid\":";
    line += std::to_string(flightThreadId());
    line += ",\"cid\":";
    line += std::to_string(cid);
    line += ",\"event\":\"";
    appendJsonEscaped(line, event);
    line += "\",\"msg\":\"";
    appendJsonEscaped(line, msg);
    line += "\"}";

    if (wantCapture)
        captureLine(level, line);
    if (!wantSink)
        return;

    SinkState &st = sinkState();
    sync::UniqueLock lk(st.mu);
    if (st.custom) {
        // Copy the sink so a concurrent setLogSink cannot invalidate it
        // mid-call; invoke outside the lock to keep sinks reentrancy-
        // and deadlock-safe.
        auto sink = st.custom;
        lk.unlock();
        sink(line);
        return;
    }
    if (st.file) {
        std::fwrite(line.data(), 1, line.size(), st.file);
        std::fputc('\n', st.file);
        std::fflush(st.file);
        return;
    }
    lk.unlock();
    // Legacy stderr sink: the human-readable lines warn()/inform()
    // always produced, still silenced by setLogQuiet().
    if (!logQuiet())
        std::fprintf(stderr, "%s: %s\n", logLevelName(level), msg);
}

} // namespace detail

} // namespace obs
} // namespace omnisim
