// Flight recorder: a fixed-size per-thread ring of the last N structured
// log events — all levels, recorded before the sink filter — plus the
// stack of currently-open trace spans per thread, drained into a
// schema-stable crash dump when an omnisim_assert fires, a fatal signal
// arrives, or a caller asks for a post-mortem snapshot.
//
// The dump (`omnisim-crash-<pid>.json`) carries everything a bug report
// needs to replay the narrative: the event tail per thread (oldest
// first, with per-thread overwrite accounting), the active span stacks,
// a full metrics-registry snapshot, the offending correlation id, and
// the reason string. Schema (version kFlightSchema):
//
//   {"schema":"omnisim-flight-1","pid":N,"reason":"...",
//    "correlation_id":N,"dropped":N,
//    "events":[{"seq":N,"ts_ns":N,"tid":N,"lvl":"warn","cid":N,
//               "event":"...","msg":"..."}, ...],
//    "spans":[{"tid":N,"stack":[{"name":"...","start_ns":N},...]},...],
//    "metrics":{...obs::Registry::global().toJson()...}}
//
// Recording is allocation-free: events copy into fixed char arrays
// under a per-thread spinlock (uncontended except while a dump walks
// the rings). The recorder is always armed once logging is enabled —
// its cost is bounded by the ring write, so there is no switch to
// forget before the crash you wanted to diagnose.
#ifndef OMNISIM_OBS_FLIGHT_HH
#define OMNISIM_OBS_FLIGHT_HH

#include <cstdint>
#include <string>

#include "obs/context.hh"
#include "obs/log.hh"

namespace omnisim {
namespace obs {

/// Schema identifier embedded in every dump.
inline constexpr const char *kFlightSchema = "omnisim-flight-1";

/// Events retained per thread.
inline constexpr std::size_t kFlightRingEvents = 128;

/// Deepest span nesting tracked per thread (deeper spans are counted
/// but not named in the dump).
inline constexpr std::size_t kFlightSpanDepth = 16;

namespace detail {
/// Record one event into the calling thread's ring (called by the
/// logger for every enabled event at kFlightMinLevel or above,
/// regardless of the sink filter). msg is copied.
void flightRecord(LogLevel level, CorrelationId cid, std::uint64_t tsNs,
                  const char *event, const char *msg);

/// Maintain the calling thread's open-span stack (called by SpanScope).
void flightSpanEnter(const char *name, std::uint64_t startNs);
void flightSpanExit();

/// Sequential id of the calling thread, shared with the log stream's
/// "tid" field. Assigned on first use, starting at 1.
std::uint32_t flightThreadId();
} // namespace detail

/// Events currently held across all rings (post-overwrite). Test aid.
std::size_t flightEventCount();

/// Events overwritten because a ring filled, across all threads.
std::uint64_t flightDroppedCount();

/// Clear every ring and the drop accounting (test isolation; the
/// per-thread ids and span stacks survive).
void flightReset();

/// Render the full dump document for `reason` and the offending
/// correlation id (pass currentCorrelationId() from failure sites).
std::string flightDumpJson(const std::string &reason, CorrelationId cid);

/// Directory crash dumps land in (default "."). The CLI points this at
/// --crash-dir; serve deployments point it at a writable spool.
void setCrashDumpDir(const std::string &dir);

/// Write flightDumpJson() to `<crashDumpDir>/omnisim-crash-<pid>.json`.
/// Re-entrant calls (a signal arriving during a dump) are dropped.
/// @return the path written, or empty on failure.
std::string writeCrashDump(const std::string &reason, CorrelationId cid);

/// Install fatal-signal handlers (SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT)
/// that write a crash dump, restore the default handler, and re-raise.
/// Best effort: dump serialization is not strictly async-signal-safe,
/// which is an accepted trade on a path that is about to terminate.
/// No-op on platforms without sigaction.
void installCrashHandlers();

} // namespace obs
} // namespace omnisim

#endif // OMNISIM_OBS_FLIGHT_HH
