// Request-scoped correlation context: a process-unique id allocated at
// every entry point (serve request, CLI invocation, batch scenario, DSE
// evaluation, fuzz seed) and carried in a thread-local so that every log
// event, trace span, and crash dump emitted while the work runs can be
// stitched back into one per-request narrative.
//
// Propagation is explicit at thread boundaries: the submitting side
// captures currentCorrelationId() and the worker re-establishes it with
// a CorrelationScope before running the task (TaskPool::submit,
// BatchRunner::forEachIndex, and RelaxPool leases all do this), so the
// id follows the request across pools without any global locking — the
// hot read is one thread-local load.
#ifndef OMNISIM_OBS_CONTEXT_HH
#define OMNISIM_OBS_CONTEXT_HH

#include <cstdint>

namespace omnisim {
namespace obs {

/// 0 is reserved for "no context"; real ids start at 1.
using CorrelationId = std::uint64_t;

/// Allocate a fresh process-unique id (atomic increment, never 0).
CorrelationId newCorrelationId();

/// The calling thread's current id; 0 when no scope is active.
CorrelationId currentCorrelationId();

namespace detail {
/// Raw set, returning the previous value. Prefer CorrelationScope.
CorrelationId swapCorrelationId(CorrelationId id);
} // namespace detail

/// RAII guard: installs `id` as the calling thread's correlation id and
/// restores the previous one (supporting nesting — a DSE evaluation
/// inside a serve request keeps the request id when none of its own is
/// allocated, or stacks a child id on top).
class CorrelationScope {
public:
    explicit CorrelationScope(CorrelationId id)
        : prev_(detail::swapCorrelationId(id)) {}
    ~CorrelationScope() { detail::swapCorrelationId(prev_); }
    CorrelationScope(const CorrelationScope &) = delete;
    CorrelationScope &operator=(const CorrelationScope &) = delete;

private:
    CorrelationId prev_;
};

} // namespace obs
} // namespace omnisim

#endif // OMNISIM_OBS_CONTEXT_HH
