#include "obs/context.hh"

#include <atomic>

namespace omnisim {
namespace obs {

namespace {
std::atomic<CorrelationId> nextId{1};
thread_local CorrelationId currentId = 0;
} // namespace

CorrelationId newCorrelationId() {
    return nextId.fetch_add(1, std::memory_order_relaxed);
}

CorrelationId currentCorrelationId() { return currentId; }

namespace detail {

CorrelationId swapCorrelationId(CorrelationId id) {
    const CorrelationId prev = currentId;
    currentId = id;
    return prev;
}

} // namespace detail

} // namespace obs
} // namespace omnisim
