// Scoped trace spans exported as Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing).
//
//   obs::traceStart();
//   { OMNISIM_SPAN("compile.chain_collapse"); ... }
//   obs::traceStop();
//   obs::traceWriteJson("t.json");
//
// Spans record begin time + duration + thread id into fixed-capacity
// per-thread rings. Each ring has its own mutex — uncontended in steady
// state because only the owning thread writes it; the exporter takes it
// briefly to copy. Tracing is off by default and costs one relaxed atomic
// load per span when disabled. When a ring fills, the oldest spans are
// overwritten (newest are kept) and the drop is counted.
#ifndef OMNISIM_OBS_TRACE_HH
#define OMNISIM_OBS_TRACE_HH

#include <cstdint>
#include <string>

#include "obs/context.hh"
#include "obs/flight.hh"
#include "obs/log.hh"

namespace omnisim {
namespace obs {

bool traceEnabled();
/// Begin a fresh trace session: clears prior spans, rebases timestamps.
void traceStart();
void traceStop();

/// Spans currently held across all rings (post-drop). Exporter/test aid.
std::size_t traceEventCount();
/// Spans overwritten because a ring filled, this session.
std::uint64_t traceDroppedCount();

/// Render the current session as Chrome trace_event JSON
/// ({"traceEvents":[...]}, "ph":"X" complete events, ts/dur in µs).
std::string traceJson();
/// Write traceJson() to `path`. False on I/O failure.
bool traceWriteJson(const std::string &path);

namespace detail {
std::uint64_t traceNowNs();
void recordSpan(const char *name, std::uint64_t startNs, std::uint64_t endNs,
                CorrelationId cid);
} // namespace detail

/// RAII span. Samples the enabled flag at construction; a span that starts
/// while tracing is on but ends after traceStop() is discarded. Each span
/// is stamped with the thread's correlation id at entry, and — whenever
/// structured logging is armed — mirrored onto the flight recorder's
/// open-span stack so crash dumps can report what each thread was doing.
/// Pass `flight = false` (OMNISIM_SPAN_HOT) for spans inside per-level /
/// per-chunk engine loops: they stay visible to the trace exporter but
/// skip the flight mirror, whose two clock reads + ring ops per span are
/// too expensive to pay thousands of times per request.
class SpanScope {
public:
    explicit SpanScope(const char *name, bool flight = true)
        : name_(name), armed_(traceEnabled()),
          flightArmed_(flight && logEnabled()),
          startNs_(armed_ || flightArmed_ ? detail::traceNowNs() : 0),
          cid_(armed_ ? currentCorrelationId() : 0) {
        if (flightArmed_)
            detail::flightSpanEnter(name_, startNs_);
    }
    ~SpanScope() {
        if (flightArmed_)
            detail::flightSpanExit();
        if (armed_ && traceEnabled())
            detail::recordSpan(name_, startNs_, detail::traceNowNs(), cid_);
    }
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

private:
    const char *name_;
    bool armed_;
    bool flightArmed_;
    std::uint64_t startNs_;
    CorrelationId cid_;
};

} // namespace obs
} // namespace omnisim

#define OMNISIM_SPAN_CONCAT2(a, b) a##b
#define OMNISIM_SPAN_CONCAT(a, b) OMNISIM_SPAN_CONCAT2(a, b)
/// Trace the enclosing scope. `name` may be a transient buffer; it is
/// copied into the span record.
#define OMNISIM_SPAN(name)                                                     \
    ::omnisim::obs::SpanScope OMNISIM_SPAN_CONCAT(omnisimSpan_,                \
                                                  __COUNTER__)(name)
/// Hot-loop span: exported to traces, never mirrored to the flight
/// recorder (see SpanScope).
#define OMNISIM_SPAN_HOT(name)                                                 \
    ::omnisim::obs::SpanScope OMNISIM_SPAN_CONCAT(omnisimSpan_,                \
                                                  __COUNTER__)(name, false)

#endif // OMNISIM_OBS_TRACE_HH
