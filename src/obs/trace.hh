// Scoped trace spans exported as Chrome trace_event JSON (loadable in
// Perfetto / chrome://tracing).
//
//   obs::traceStart();
//   { OMNISIM_SPAN("compile.chain_collapse"); ... }
//   obs::traceStop();
//   obs::traceWriteJson("t.json");
//
// Spans record begin time + duration + thread id into fixed-capacity
// per-thread rings. Each ring has its own mutex — uncontended in steady
// state because only the owning thread writes it; the exporter takes it
// briefly to copy. Tracing is off by default and costs one relaxed atomic
// load per span when disabled. When a ring fills, the oldest spans are
// overwritten (newest are kept) and the drop is counted.
#ifndef OMNISIM_OBS_TRACE_HH
#define OMNISIM_OBS_TRACE_HH

#include <cstdint>
#include <string>

namespace omnisim {
namespace obs {

bool traceEnabled();
/// Begin a fresh trace session: clears prior spans, rebases timestamps.
void traceStart();
void traceStop();

/// Spans currently held across all rings (post-drop). Exporter/test aid.
std::size_t traceEventCount();
/// Spans overwritten because a ring filled, this session.
std::uint64_t traceDroppedCount();

/// Render the current session as Chrome trace_event JSON
/// ({"traceEvents":[...]}, "ph":"X" complete events, ts/dur in µs).
std::string traceJson();
/// Write traceJson() to `path`. False on I/O failure.
bool traceWriteJson(const std::string &path);

namespace detail {
std::uint64_t traceNowNs();
void recordSpan(const char *name, std::uint64_t startNs, std::uint64_t endNs);
} // namespace detail

/// RAII span. Samples the enabled flag at construction; a span that starts
/// while tracing is on but ends after traceStop() is discarded.
class SpanScope {
public:
    explicit SpanScope(const char *name)
        : name_(name), armed_(traceEnabled()),
          startNs_(armed_ ? detail::traceNowNs() : 0) {}
    ~SpanScope() {
        if (armed_ && traceEnabled())
            detail::recordSpan(name_, startNs_, detail::traceNowNs());
    }
    SpanScope(const SpanScope &) = delete;
    SpanScope &operator=(const SpanScope &) = delete;

private:
    const char *name_;
    bool armed_;
    std::uint64_t startNs_;
};

} // namespace obs
} // namespace omnisim

#define OMNISIM_SPAN_CONCAT2(a, b) a##b
#define OMNISIM_SPAN_CONCAT(a, b) OMNISIM_SPAN_CONCAT2(a, b)
/// Trace the enclosing scope. `name` may be a transient buffer; it is
/// copied into the span record.
#define OMNISIM_SPAN(name)                                                     \
    ::omnisim::obs::SpanScope OMNISIM_SPAN_CONCAT(omnisimSpan_,                \
                                                  __COUNTER__)(name)

#endif // OMNISIM_OBS_TRACE_HH
