#include "serve/json.hh"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

namespace omnisim::serve
{

namespace
{

/** Largest integer a double represents exactly (2^53). */
constexpr double kMaxExactDouble = 9007199254740992.0;

} // namespace

// ---------------------------------------------------------------------------
// JsonValue accessors.
// ---------------------------------------------------------------------------

bool
JsonValue::boolean() const
{
    if (kind_ != Kind::Bool)
        omnisim_fatal("json: expected a boolean");
    return bool_;
}

double
JsonValue::number() const
{
    if (kind_ != Kind::Number)
        omnisim_fatal("json: expected a number");
    return num_;
}

const std::string &
JsonValue::str() const
{
    if (kind_ != Kind::String)
        omnisim_fatal("json: expected a string");
    return str_;
}

const std::vector<JsonValue> &
JsonValue::array() const
{
    if (kind_ != Kind::Array)
        omnisim_fatal("json: expected an array");
    return elems_;
}

const std::vector<std::pair<std::string, JsonValue>> &
JsonValue::members() const
{
    if (kind_ != Kind::Object)
        omnisim_fatal("json: expected an object");
    return members_;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : members_)
        if (k == key)
            return &v;
    return nullptr;
}

std::uint64_t
JsonValue::asU64(const char *what, std::uint64_t max) const
{
    if (kind_ != Kind::Number)
        omnisim_fatal("%s must be a number", what);
    if (intExact_) {
        if (intNeg_ || intMag_ > max)
            omnisim_fatal("%s must be an integer in [0, %llu]", what,
                          static_cast<unsigned long long>(max));
        return intMag_;
    }
    // Lossy forms (fraction, exponent, magnitude beyond 64 bits) are
    // only acceptable while the double is still exact; above 2^53 the
    // true value is unknowable and silently truncating it would corrupt
    // ids/depths/cycle counts — make it the caller's protocol error.
    if (!(num_ >= 0) || num_ != std::floor(num_) ||
        num_ > static_cast<double>(max))
        omnisim_fatal("%s must be an integer in [0, %llu]", what,
                      static_cast<unsigned long long>(max));
    if (num_ >= kMaxExactDouble)
        omnisim_fatal("%s is not exactly representable (magnitude above "
                      "2^53 reached the parser in lossy form)", what);
    return static_cast<std::uint64_t>(num_);
}

std::int64_t
JsonValue::asI64(const char *what) const
{
    if (kind_ != Kind::Number)
        omnisim_fatal("%s must be a number", what);
    constexpr std::uint64_t kI64MaxMag = 0x7fffffffffffffffULL;
    if (intExact_) {
        if (intMag_ > kI64MaxMag + (intNeg_ ? 1 : 0))
            omnisim_fatal("%s overflows int64", what);
        if (intNeg_ && intMag_ == kI64MaxMag + 1)
            return std::numeric_limits<std::int64_t>::min();
        const auto mag = static_cast<std::int64_t>(intMag_);
        return intNeg_ ? -mag : mag;
    }
    if (num_ != std::floor(num_) || std::fabs(num_) >= kMaxExactDouble)
        omnisim_fatal("%s is not exactly representable as int64", what);
    return static_cast<std::int64_t>(num_);
}

JsonValue
JsonValue::makeBool(bool b)
{
    JsonValue v;
    v.kind_ = Kind::Bool;
    v.bool_ = b;
    return v;
}

JsonValue
JsonValue::makeNumber(double n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = n;
    // A double that happens to hold a small whole number is still an
    // exact integer; larger magnitudes stay in the lossy-double lane.
    if (std::isfinite(n) && n == std::floor(n) &&
        std::fabs(n) < kMaxExactDouble) {
        v.intExact_ = true;
        v.intNeg_ = n < 0;
        v.intMag_ = static_cast<std::uint64_t>(n < 0 ? -n : n);
    }
    return v;
}

JsonValue
JsonValue::makeInt(std::int64_t n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(n);
    v.intExact_ = true;
    v.intNeg_ = n < 0;
    v.intMag_ = n < 0 ? ~static_cast<std::uint64_t>(n) + 1
                      : static_cast<std::uint64_t>(n);
    return v;
}

JsonValue
JsonValue::makeUInt(std::uint64_t n)
{
    JsonValue v;
    v.kind_ = Kind::Number;
    v.num_ = static_cast<double>(n);
    v.intExact_ = true;
    v.intNeg_ = false;
    v.intMag_ = n;
    return v;
}

JsonValue
JsonValue::makeString(std::string s)
{
    JsonValue v;
    v.kind_ = Kind::String;
    v.str_ = std::move(s);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> elems)
{
    JsonValue v;
    v.kind_ = Kind::Array;
    v.elems_ = std::move(elems);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<std::pair<std::string, JsonValue>> members)
{
    JsonValue v;
    v.kind_ = Kind::Object;
    v.members_ = std::move(members);
    return v;
}

// ---------------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------------

namespace
{

class Parser
{
  public:
    explicit Parser(std::string_view text) : p_(text) {}

    JsonValue
    document()
    {
        JsonValue v = value(0);
        skipWs();
        if (pos_ != p_.size())
            omnisim_fatal("json: trailing characters at offset %zu", pos_);
        return v;
    }

  private:
    static constexpr int kMaxDepth = 64;

    JsonValue
    value(int depth)
    {
        if (depth > kMaxDepth)
            omnisim_fatal("json: nesting deeper than %d", kMaxDepth);
        skipWs();
        if (pos_ >= p_.size())
            omnisim_fatal("json: unexpected end of input");
        const char c = p_[pos_];
        switch (c) {
          case '{':
            return object(depth);
          case '[':
            return array(depth);
          case '"':
            return JsonValue::makeString(string());
          case 't':
            literal("true");
            return JsonValue::makeBool(true);
          case 'f':
            literal("false");
            return JsonValue::makeBool(false);
          case 'n':
            literal("null");
            return JsonValue::makeNull();
          default:
            return number();
        }
    }

    JsonValue
    object(int depth)
    {
        expect('{');
        std::vector<std::pair<std::string, JsonValue>> members;
        skipWs();
        if (peek() == '}') {
            ++pos_;
            return JsonValue::makeObject(std::move(members));
        }
        for (;;) {
            skipWs();
            std::string key = string();
            skipWs();
            expect(':');
            members.emplace_back(std::move(key), value(depth + 1));
            skipWs();
            const char c = next();
            if (c == '}')
                return JsonValue::makeObject(std::move(members));
            if (c != ',')
                omnisim_fatal("json: expected ',' or '}' at offset %zu",
                              pos_ - 1);
        }
    }

    JsonValue
    array(int depth)
    {
        expect('[');
        std::vector<JsonValue> elems;
        skipWs();
        if (peek() == ']') {
            ++pos_;
            return JsonValue::makeArray(std::move(elems));
        }
        for (;;) {
            elems.push_back(value(depth + 1));
            skipWs();
            const char c = next();
            if (c == ']')
                return JsonValue::makeArray(std::move(elems));
            if (c != ',')
                omnisim_fatal("json: expected ',' or ']' at offset %zu",
                              pos_ - 1);
        }
    }

    std::string
    string()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (pos_ >= p_.size())
                omnisim_fatal("json: unterminated string");
            const char c = p_[pos_++];
            if (c == '"')
                return out;
            if (static_cast<unsigned char>(c) < 0x20)
                omnisim_fatal("json: raw control character in string");
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= p_.size())
                omnisim_fatal("json: unterminated escape");
            const char e = p_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': unicodeEscape(out); break;
              default:
                omnisim_fatal("json: bad escape '\\%c'", e);
            }
        }
    }

    /** \uXXXX (with surrogate pairs) encoded to UTF-8. */
    void
    unicodeEscape(std::string &out)
    {
        std::uint32_t cp = hex4();
        if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 >= p_.size() || p_[pos_] != '\\' ||
                p_[pos_ + 1] != 'u')
                omnisim_fatal("json: unpaired surrogate");
            pos_ += 2;
            const std::uint32_t lo = hex4();
            if (lo < 0xDC00 || lo > 0xDFFF)
                omnisim_fatal("json: bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            omnisim_fatal("json: unpaired surrogate");
        }
        if (cp < 0x80) {
            out += static_cast<char>(cp);
        } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else if (cp < 0x10000) {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        } else {
            out += static_cast<char>(0xF0 | (cp >> 18));
            out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
        }
    }

    std::uint32_t
    hex4()
    {
        if (pos_ + 4 > p_.size())
            omnisim_fatal("json: truncated \\u escape");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            const char c = p_[pos_++];
            v <<= 4;
            if (c >= '0' && c <= '9')
                v |= static_cast<std::uint32_t>(c - '0');
            else if (c >= 'a' && c <= 'f')
                v |= static_cast<std::uint32_t>(c - 'a' + 10);
            else if (c >= 'A' && c <= 'F')
                v |= static_cast<std::uint32_t>(c - 'A' + 10);
            else
                omnisim_fatal("json: bad hex digit in \\u escape");
        }
        return v;
    }

    JsonValue
    number()
    {
        const std::size_t start = pos_;
        const bool neg = peek() == '-';
        if (neg)
            ++pos_;
        const std::size_t intStart = pos_;
        if (!digit())
            omnisim_fatal("json: bad value at offset %zu", start);
        while (digit())
            ;
        if (p_[intStart] == '0' && pos_ - intStart > 1)
            omnisim_fatal("json: leading zero at offset %zu", intStart);
        const std::size_t intEnd = pos_;
        bool lossless = true; // pure integer lexeme, no '.' / exponent
        if (peek() == '.') {
            lossless = false;
            ++pos_;
            if (!digit())
                omnisim_fatal("json: bad fraction at offset %zu", pos_);
            while (digit())
                ;
        }
        if (peek() == 'e' || peek() == 'E') {
            lossless = false;
            ++pos_;
            if (peek() == '+' || peek() == '-')
                ++pos_;
            if (!digit())
                omnisim_fatal("json: bad exponent at offset %zu", pos_);
            while (digit())
                ;
        }

        // Integer lexemes that fit 64 bits are decoded exactly, never
        // through a double: protocol ids/depths/cycle counts above 2^53
        // must survive a parse -> dump round trip bit-identically.
        if (lossless) {
            std::uint64_t mag = 0;
            bool fits = true;
            for (std::size_t i = intStart; i < intEnd && fits; ++i) {
                const auto digitVal =
                    static_cast<std::uint64_t>(p_[i] - '0');
                if (mag > (std::numeric_limits<std::uint64_t>::max() -
                           digitVal) / 10)
                    fits = false;
                else
                    mag = mag * 10 + digitVal;
            }
            // Negative magnitudes must also fit int64 to stay exact.
            if (fits && neg && mag > (1ULL << 63))
                fits = false;
            if (fits) {
                if (neg && mag == (1ULL << 63))
                    return JsonValue::makeInt(
                        std::numeric_limits<std::int64_t>::min());
                const auto sMag = static_cast<std::int64_t>(mag);
                return neg ? JsonValue::makeInt(-sMag)
                           : JsonValue::makeUInt(mag);
            }
        }

        const std::string text(p_.substr(start, pos_ - start));
        const double v = std::strtod(text.c_str(), nullptr);
        if (!std::isfinite(v))
            omnisim_fatal("json: number out of range at offset %zu",
                          start);
        return JsonValue::makeNumber(v);
    }

    bool
    digit()
    {
        if (pos_ < p_.size() && p_[pos_] >= '0' && p_[pos_] <= '9') {
            ++pos_;
            return true;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < p_.size() &&
               (p_[pos_] == ' ' || p_[pos_] == '\t' || p_[pos_] == '\n' ||
                p_[pos_] == '\r'))
            ++pos_;
    }

    char
    peek() const
    {
        return pos_ < p_.size() ? p_[pos_] : '\0';
    }

    char
    next()
    {
        if (pos_ >= p_.size())
            omnisim_fatal("json: unexpected end of input");
        return p_[pos_++];
    }

    void
    expect(char c)
    {
        if (next() != c)
            omnisim_fatal("json: expected '%c' at offset %zu", c, pos_ - 1);
    }

    void
    literal(const char *word)
    {
        const std::string_view w(word);
        if (p_.substr(pos_, w.size()) != w)
            omnisim_fatal("json: bad literal at offset %zu", pos_);
        pos_ += w.size();
    }

    std::string_view p_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(std::string_view text)
{
    return Parser(text).document();
}

// ---------------------------------------------------------------------------
// Emission.
// ---------------------------------------------------------------------------

std::string
jsonQuote(std::string_view s)
{
    std::string q = "\"";
    for (const char c : s) {
        switch (c) {
          case '"': q += "\\\""; break;
          case '\\': q += "\\\\"; break;
          case '\b': q += "\\b"; break;
          case '\f': q += "\\f"; break;
          case '\n': q += "\\n"; break;
          case '\r': q += "\\r"; break;
          case '\t': q += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20)
                q += strf("\\u%04x", static_cast<unsigned>(
                                         static_cast<unsigned char>(c)));
            else
                q += c;
        }
    }
    return q + "\"";
}

std::string
JsonValue::dump() const
{
    switch (kind_) {
      case Kind::Null:
        return "null";
      case Kind::Bool:
        return bool_ ? "true" : "false";
      case Kind::Number: {
        if (intExact_) {
            if (intNeg_ && intMag_ == (1ULL << 63))
                return "-9223372036854775808";
            return strf("%s%llu", intNeg_ ? "-" : "",
                        static_cast<unsigned long long>(intMag_));
        }
        return std::isfinite(num_) ? strf("%.17g", num_) : "null";
      }
      case Kind::String:
        return jsonQuote(str_);
      case Kind::Array: {
        std::string out = "[";
        for (std::size_t i = 0; i < elems_.size(); ++i) {
            if (i)
                out += ',';
            out += elems_[i].dump();
        }
        return out + "]";
      }
      case Kind::Object: {
        std::string out = "{";
        for (std::size_t i = 0; i < members_.size(); ++i) {
            if (i)
                out += ',';
            out += jsonQuote(members_[i].first) + ":" +
                   members_[i].second.dump();
        }
        return out + "}";
      }
    }
    return "null";
}

JsonBuilder &
JsonBuilder::key(std::string_view k)
{
    comma();
    out_ += jsonQuote(k);
    out_ += ':';
    fresh_ = true;
    return *this;
}

JsonBuilder &
JsonBuilder::value(std::string_view text)
{
    comma();
    out_ += text;
    return *this;
}

JsonBuilder &JsonBuilder::str(std::string_view v)
{
    return value(jsonQuote(v));
}

JsonBuilder &
JsonBuilder::num(double v)
{
    return value(std::isfinite(v) ? strf("%.6g", v) : "0");
}

JsonBuilder &
JsonBuilder::num(std::uint64_t v)
{
    return value(strf("%llu", static_cast<unsigned long long>(v)));
}

JsonBuilder &
JsonBuilder::num(std::int64_t v)
{
    return value(strf("%lld", static_cast<long long>(v)));
}

JsonBuilder &JsonBuilder::boolean(bool v)
{
    return value(v ? "true" : "false");
}

JsonBuilder &JsonBuilder::null() { return value("null"); }

JsonBuilder &JsonBuilder::rawValue(std::string_view json)
{
    return value(json);
}

JsonBuilder &
JsonBuilder::beginObject()
{
    comma();
    out_ += '{';
    fresh_ = true;
    return *this;
}

JsonBuilder &
JsonBuilder::endObject()
{
    out_ += '}';
    fresh_ = false;
    return *this;
}

JsonBuilder &
JsonBuilder::beginArray()
{
    comma();
    out_ += '[';
    fresh_ = true;
    return *this;
}

JsonBuilder &
JsonBuilder::endArray()
{
    out_ += ']';
    fresh_ = false;
    return *this;
}

std::string
JsonBuilder::finish()
{
    out_ += '}';
    return std::move(out_);
}

void
JsonBuilder::comma()
{
    if (!fresh_)
        out_ += ',';
    fresh_ = false;
}

} // namespace omnisim::serve
