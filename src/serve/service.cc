#include "serve/service.hh"

#include <algorithm>
#include <istream>
#include <limits>
#include <ostream>

#include "batch/batch.hh"
#include "design/design.hh"
#include "designs/common.hh"
#include "dse/dse.hh"
#include "io/run_store.hh"
#include "obs/context.hh"
#include "obs/log.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "serve/json.hh"
#include "support/logging.hh"
#include "support/stopwatch.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <cerrno>
#include <csignal>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#define OMNISIM_HAVE_UNIX_SOCKETS 1
#endif

namespace omnisim::serve
{

/** One parsed request (internal to the dispatcher). */
struct Request
{
    JsonValue doc;
    std::string idJson = "null"; ///< The "id" member re-serialized.
    std::string op;
};

/** One finished response line, tagged for per-op accounting. */
struct SimService::Response
{
    Response() = default;
    Response(std::string l) : line(std::move(l)) {}
    std::string line;
    std::string op; ///< empty when the line never parsed far enough
    bool ok = false;
};

/**
 * Per-design shared state: the evaluation cache plus the FIFO
 * name/registered-depth metadata every depth-resolving request needs —
 * cached here so the hot serving path never rebuilds the Design just
 * to translate names.
 */
struct SimService::DesignCache
{
    std::unique_ptr<dse::EvalCache> cache;
    std::vector<std::string> fifoNames;
    std::vector<std::uint32_t> baseDepths;
    std::once_flag attachOnce; ///< Store rehydration runs exactly once.
};

namespace
{

constexpr std::uint64_t kMaxDepth = 1u << 20;

/**
 * Per-op telemetry handles (requests/errors counters + execute-latency
 * histogram), resolved once per op name. The op set is closed; anything
 * unknown or unparseable is accounted under "other" so totals always
 * reconcile with requestsServed().
 */
struct OpMetrics
{
    explicit OpMetrics(const std::string &op)
        : requests(obs::Registry::global().counter("serve.requests." + op)),
          errors(obs::Registry::global().counter("serve.errors." + op)),
          latencyUs(
              obs::Registry::global().histogram("serve.request_us." + op))
    {}
    obs::Counter &requests;
    obs::Counter &errors;
    obs::Histogram &latencyUs;
};

constexpr const char *kKnownOps[] = {
    "simulate", "resimulate", "dse",     "batch",
    "list",     "stats",      "metrics", "shutdown",
};

OpMetrics &
opMetricsFor(const std::string &op)
{
    static OpMetrics simulate{"simulate"};
    static OpMetrics resimulate{"resimulate"};
    static OpMetrics dse{"dse"};
    static OpMetrics batch{"batch"};
    static OpMetrics list{"list"};
    static OpMetrics stats{"stats"};
    static OpMetrics metrics{"metrics"};
    static OpMetrics shutdown{"shutdown"};
    static OpMetrics other{"other"};
    if (op == "simulate")
        return simulate;
    if (op == "resimulate")
        return resimulate;
    if (op == "dse")
        return dse;
    if (op == "batch")
        return batch;
    if (op == "list")
        return list;
    if (op == "stats")
        return stats;
    if (op == "metrics")
        return metrics;
    if (op == "shutdown")
        return shutdown;
    return other;
}

obs::Gauge &
inflightGauge()
{
    static obs::Gauge &g = obs::Registry::global().gauge("serve.inflight");
    return g;
}

/** Begin a response carrying the request id, op, and correlation id. */
JsonBuilder
beginResponse(const Request &req, bool ok)
{
    JsonBuilder b;
    b.key("id").rawValue(req.idJson);
    b.key("op").str(req.op);
    b.key("ok").boolean(ok);
    b.key("cid").num(obs::currentCorrelationId());
    return b;
}

/** Required string request field. */
const std::string &
requireString(const Request &req, const char *field)
{
    const JsonValue *v = req.doc.find(field);
    if (!v || !v->isString())
        omnisim_fatal("'%s' requires a \"%s\" string field",
                      req.op.c_str(), field);
    return v->str();
}

/** Optional unsigned request field with default. */
std::uint64_t
optionalU64(const Request &req, const char *field, std::uint64_t def,
            std::uint64_t max)
{
    const JsonValue *v = req.doc.find(field);
    if (!v || v->isNull())
        return def;
    return v->asU64(field, max);
}

/** Optional string request field with default. */
std::string
optionalString(const Request &req, const char *field, std::string def)
{
    const JsonValue *v = req.doc.find(field);
    if (!v || v->isNull())
        return def;
    return v->str();
}

/**
 * Resolve a request "depths" member against a design's cached FIFO
 * metadata: registered depths, overridden either by an object of
 * {"fifoName": depth} pairs or by a full per-FIFO array.
 */
dse::DepthVector
resolveDepths(const std::string &design,
              const std::vector<std::string> &fifoNames,
              const std::vector<std::uint32_t> &baseDepths,
              const JsonValue *spec)
{
    dse::DepthVector depths(baseDepths.begin(), baseDepths.end());
    if (!spec || spec->isNull())
        return depths;
    if (spec->isObject()) {
        for (const auto &[name, v] : spec->members()) {
            const auto it =
                std::find(fifoNames.begin(), fifoNames.end(), name);
            if (it == fifoNames.end())
                omnisim_fatal("design '%s' has no FIFO named '%s'",
                              design.c_str(), name.c_str());
            const auto f = static_cast<std::size_t>(
                it - fifoNames.begin());
            depths[f] = static_cast<std::uint32_t>(
                v.asU64("depth", kMaxDepth));
            if (depths[f] < 1)
                omnisim_fatal("fifo '%s': depth must be >= 1",
                              name.c_str());
        }
        return depths;
    }
    if (spec->isArray()) {
        if (spec->array().size() != depths.size())
            omnisim_fatal("\"depths\" array has %zu entries; design has "
                          "%zu FIFOs", spec->array().size(), depths.size());
        for (std::size_t f = 0; f < depths.size(); ++f) {
            depths[f] = static_cast<std::uint32_t>(
                spec->array()[f].asU64("depth", kMaxDepth));
            if (depths[f] < 1)
                omnisim_fatal("fifo %zu: depth must be >= 1", f);
        }
        return depths;
    }
    omnisim_fatal("\"depths\" must be an object of fifo->depth pairs or "
                  "a per-FIFO array");
}

/** Append one evaluation's summary fields to a builder. */
void
emitEvaluation(JsonBuilder &b, const dse::Evaluation &e)
{
    b.key("status").str(simStatusName(e.status));
    b.key("cycles").num(static_cast<std::uint64_t>(e.latency));
    b.key("cost").num(static_cast<std::uint64_t>(e.cost));
    b.key("method").str(dse::evalMethodName(e.method));
    b.key("via_delta").boolean(e.viaDelta);
    b.key("cached").boolean(e.fromMemo);
    if (!e.message.empty())
        b.key("message").str(e.message);
}

} // namespace

// ---------------------------------------------------------------------------
// SimService.
// ---------------------------------------------------------------------------

SimService::SimService(ServeOptions opts) : opts_(std::move(opts))
{
    if (!opts_.storeDir.empty())
        store_ = std::make_unique<io::RunStore>(opts_.storeDir);
    pool_ = std::make_unique<batch::TaskPool>(opts_.jobs);
}

SimService::~SimService() = default;

unsigned
SimService::jobs() const
{
    return pool_->jobs();
}

SimService::DesignCache &
SimService::cacheFor(const std::string &design)
{
    DesignCache *entry;
    {
        sync::LockGuard lock(cachesMu_);
        auto it = caches_.find(design);
        if (it == caches_.end()) {
            // findDesign throws FatalError on unknown names — surfaced
            // as an error response by the dispatcher, never cached.
            const designs::DesignEntry &de = designs::findDesign(design);
            auto dc = std::make_unique<DesignCache>();
            const Design d = de.build();
            for (const auto &f : d.fifos()) {
                dc->fifoNames.push_back(f.name);
                dc->baseDepths.push_back(f.depth);
            }
            dc->cache = std::make_unique<dse::EvalCache>(
                de.build, opts_.engine, opts_.maxPoolPerDesign);
            it = caches_.emplace(design, std::move(dc)).first;
        }
        entry = it->second.get();
    }
    // Store rehydration (file IO plus a CompiledRun freeze per stored
    // run) happens outside the global map lock: a first request for a
    // big design stalls only same-design requests, which genuinely
    // need the warm pool, and call_once makes them wait for it.
    if (store_)
        std::call_once(entry->attachOnce, [&] {
            entry->cache->attachStore(store_.get(), design);
        });
    return *entry;
}

std::string
SimService::handle(const std::string &line)
{
    // Every request gets a fresh correlation id, installed before the
    // span opens so the span, every event the handlers emit, and the
    // response's "cid" member all stitch to the same id.
    const obs::CorrelationId cid = obs::newCorrelationId();
    obs::CorrelationScope cscope(cid);
    OMNISIM_SPAN("serve.request");
    obs::ScopedGauge inflight(inflightGauge());
    const auto t0 = std::chrono::steady_clock::now();
    Response r = dispatch(line);
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
    OpMetrics &om = opMetricsFor(r.op);
    om.requests.add();
    if (!r.ok)
        om.errors.add();
    om.latencyUs.record(static_cast<std::uint64_t>(us));
    served_.fetch_add(1, std::memory_order_relaxed);
    return std::move(r.line);
}

void
SimService::submit(std::string line, std::function<void(std::string)> sink)
{
    static obs::Histogram &mQueueWait =
        obs::Registry::global().histogram("serve.queue_wait_us");
    const auto enqueued = std::chrono::steady_clock::now();
    pool_->submit([this, line = std::move(line), sink = std::move(sink),
                   enqueued]() mutable {
        mQueueWait.record(static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - enqueued)
                .count()));
        sink(handle(line));
    });
}

void
SimService::drain()
{
    pool_->drain();
}

bool
SimService::shutdownRequested() const
{
    return shutdown_.load(std::memory_order_acquire);
}

std::uint64_t
SimService::requestsServed() const
{
    return served_.load(std::memory_order_relaxed);
}

SimService::Response
SimService::dispatch(const std::string &line)
{
    std::string idJson = "null";
    std::string op;
    // Collect this request's warn+ events so error responses can echo
    // the diagnostic tail the operator would otherwise have to fish out
    // of the server log by cid.
    obs::LogCapture capture;
    try {
        Request req;
        req.doc = JsonValue::parse(line);
        if (!req.doc.isObject())
            omnisim_fatal("request must be a JSON object");
        if (const JsonValue *id = req.doc.find("id"))
            req.idJson = id->dump();
        idJson = req.idJson;
        const JsonValue *opv = req.doc.find("op");
        if (!opv || !opv->isString())
            omnisim_fatal("request needs an \"op\" string field");
        req.op = opv->str();
        op = req.op;

        Response r;
        if (req.op == "simulate")
            r = doSimulate(req);
        else if (req.op == "resimulate")
            r = doResimulate(req);
        else if (req.op == "dse")
            r = doDse(req);
        else if (req.op == "batch")
            r = doBatch(req);
        else if (req.op == "list")
            r = doList(req);
        else if (req.op == "stats")
            r = doStats(req);
        else if (req.op == "metrics")
            r = doMetrics(req);
        else if (req.op == "shutdown") {
            shutdown_.store(true, std::memory_order_release);
            JsonBuilder b = beginResponse(req, true);
            b.key("served").num(
                served_.load(std::memory_order_relaxed) + 1);
            r = Response(b.finish());
        } else {
            omnisim_fatal("unknown op '%s' (have: simulate, resimulate, "
                          "dse, batch, list, stats, metrics, shutdown)",
                          req.op.c_str());
        }
        r.op = req.op;
        r.ok = true;
        // One completion event per request (not entry + exit): the
        // request path is hot enough that every ring record shows up
        // in the serve-throughput logging gate.
        OMNISIM_LOG_DEBUG("serve.request_ok", "op=%s id=%s", op.c_str(),
                          req.idJson.c_str());
        return r;
    } catch (const std::exception &e) {
        // Logged inside the capture scope so the failure event itself is
        // part of the response's "log" tail.
        OMNISIM_LOG_ERROR("serve.request_failed", "op=%s error=%s",
                          op.empty() ? "?" : op.c_str(), e.what());
        JsonBuilder b;
        b.key("id").rawValue(idJson);
        if (!op.empty())
            b.key("op").str(op);
        b.key("ok").boolean(false);
        b.key("cid").num(obs::currentCorrelationId());
        b.key("error").str(e.what());
        if (!capture.lines().empty()) {
            b.key("log").beginArray();
            for (const std::string &l : capture.lines())
                b.rawValue(l);
            b.endArray();
            if (capture.truncated() > 0)
                b.key("log_truncated").num(capture.truncated());
        }
        Response r(b.finish());
        r.op = op;
        return r;
    }
}

SimService::Response
SimService::doSimulate(const Request &req)
{
    const std::string &design = requireString(req, "design");
    const std::string engine =
        optionalString(req, "engine", "omnisim");

    Stopwatch sw;
    if (engine == "omnisim") {
        // Through the shared cache with the reuse-pool probe disabled:
        // a cold, full-fidelity engine run (unless this exact
        // configuration was already evaluated) whose result is memoized
        // and published to the store for every later resimulate.
        DesignCache &dc = cacheFor(design);
        const dse::DepthVector depths =
            resolveDepths(design, dc.fifoNames, dc.baseDepths,
                          req.doc.find("depths"));
        const dse::Evaluation e =
            dc.cache->evaluate(depths, /*allowIncremental=*/false);
        JsonBuilder b = beginResponse(req, true);
        b.key("design").str(design);
        b.key("engine").str(engine);
        emitEvaluation(b, e);
        b.key("seconds").num(sw.seconds());
        return {b.finish()};
    }

    // Foreign engines run through the batch scenario path (which
    // isolates build/compile/engine failures); no cache, no store.
    batch::Scenario sc;
    sc.design = design;
    if (!batch::parseEngineKind(engine, sc.engine))
        omnisim_fatal("unknown engine '%s'", engine.c_str());
    if (const JsonValue *spec = req.doc.find("depths");
        spec && !spec->isNull()) {
        if (!spec->isObject())
            omnisim_fatal("\"depths\" must be an object of fifo->depth "
                          "pairs for non-omnisim engines");
        for (const auto &[name, v] : spec->members())
            sc.depths.push_back(
                {name, static_cast<std::uint32_t>(
                           v.asU64("depth", kMaxDepth))});
    }
    const batch::ScenarioOutcome out = batch::runScenario(sc);
    if (out.failed)
        omnisim_fatal("%s", out.error.c_str());
    JsonBuilder b = beginResponse(req, true);
    b.key("design").str(design);
    b.key("engine").str(engine);
    b.key("status").str(simStatusName(out.result.status));
    b.key("cycles").num(static_cast<std::uint64_t>(out.result.totalCycles));
    b.key("method").str("full");
    b.key("seconds").num(sw.seconds());
    return {b.finish()};
}

SimService::Response
SimService::doResimulate(const Request &req)
{
    const std::string &design = requireString(req, "design");

    Stopwatch sw;
    DesignCache &dc = cacheFor(design);
    const dse::DepthVector depths = resolveDepths(
        design, dc.fifoNames, dc.baseDepths, req.doc.find("depths"));
    const dse::Evaluation e = dc.cache->evaluate(depths);
    JsonBuilder b = beginResponse(req, true);
    b.key("design").str(design);
    b.key("engine").str("omnisim");
    emitEvaluation(b, e);
    b.key("seconds").num(sw.seconds());
    return {b.finish()};
}

SimService::Response
SimService::doDse(const Request &req)
{
    const std::string &design = requireString(req, "design");

    dse::DseOptions opts;
    opts.strategy = optionalString(req, "strategy", "grid");
    opts.budget = static_cast<std::size_t>(
        optionalU64(req, "budget", opts.budget, 1u << 24));
    opts.seed = optionalU64(req, "seed", opts.seed,
                            std::numeric_limits<std::uint64_t>::max());
    opts.jobs = static_cast<unsigned>(optionalU64(req, "jobs", 0, 4096));
    opts.engine = opts_.engine;
    opts.store = store_.get();
    opts.storeDesign = design;

    const bool linear = [&] {
        const JsonValue *v = req.doc.find("linear");
        return v && v->isBool() && v->boolean();
    }();
    if (const JsonValue *fifos = req.doc.find("fifos");
        fifos && !fifos->isNull()) {
        for (const JsonValue &g : fifos->array()) {
            dse::FifoRange r;
            const JsonValue *name = g.find("fifo");
            if (!name || !name->isString())
                omnisim_fatal("each \"fifos\" entry needs a \"fifo\" "
                              "name");
            r.fifo = name->str();
            if (const JsonValue *v = g.find("from"))
                r.lo = static_cast<std::uint32_t>(
                    v->asU64("from", kMaxDepth));
            if (const JsonValue *v = g.find("to"))
                r.hi = static_cast<std::uint32_t>(
                    v->asU64("to", kMaxDepth));
            r.geometric = !linear;
            opts.space.fifos.push_back(std::move(r));
        }
    }

    const dse::DseReport rep = dse::exploreRegistered(design, opts);

    JsonBuilder b = beginResponse(req, true);
    b.key("design").str(design);
    b.key("strategy").str(rep.strategy);
    b.key("evaluations").num(rep.evaluations.size());
    b.key("full_runs").num(rep.fullRuns);
    b.key("incremental_hits").num(rep.incrementalHits);
    b.key("delta_hits").num(rep.deltaHits);
    b.key("stored_warm_starts").num(rep.storedWarmStarts);
    b.key("hit_rate").num(rep.hitRate());
    b.key("wall_seconds").num(rep.wallSeconds);
    b.key("any_ok").boolean(rep.anyOk);

    const auto emitPoint = [&](const dse::Evaluation &e) {
        b.beginObject();
        b.key("cost").num(static_cast<std::uint64_t>(e.cost));
        b.key("cycles").num(static_cast<std::uint64_t>(e.latency));
        b.key("depths").beginObject();
        for (const std::size_t a : rep.axes)
            b.key(rep.fifoNames[a])
                .num(static_cast<std::uint64_t>(e.depths[a]));
        b.endObject();
        b.endObject();
    };
    b.key("frontier").beginArray();
    for (const auto &e : rep.frontier)
        emitPoint(e);
    b.endArray();
    if (rep.anyOk) {
        b.key("min_latency");
        emitPoint(rep.minLatency);
        b.key("knee");
        emitPoint(rep.knee);
    }
    return {b.finish()};
}

SimService::Response
SimService::doBatch(const Request &req)
{
    std::vector<std::string> only;
    if (const JsonValue *designs = req.doc.find("designs");
        designs && !designs->isNull()) {
        for (const JsonValue &d : designs->array())
            only.push_back(d.str());
    }
    std::vector<batch::EngineKind> engines;
    if (const JsonValue *list = req.doc.find("engines");
        list && !list->isNull()) {
        for (const JsonValue &e : list->array()) {
            batch::EngineKind kind;
            if (!batch::parseEngineKind(e.str(), kind))
                omnisim_fatal("unknown engine '%s'", e.str().c_str());
            engines.push_back(kind);
        }
    }
    if (engines.empty())
        engines.push_back(batch::EngineKind::OmniSim);
    const auto seeds = static_cast<unsigned>(
        optionalU64(req, "seeds", 1, 1u << 20));
    const auto jobs = static_cast<unsigned>(
        optionalU64(req, "jobs", 0, 4096));

    const std::vector<batch::Scenario> scenarios =
        batch::registryScenarios(engines, std::max(1u, seeds), only);
    const batch::BatchReport rep =
        batch::BatchRunner({jobs}).run(scenarios);

    JsonBuilder b = beginResponse(req, true);
    b.key("scenarios").num(rep.outcomes.size());
    b.key("ok_count").num(rep.okCount());
    b.key("failed_count").num(rep.failedCount());
    b.key("wall_seconds").num(rep.wallSeconds);
    b.key("throughput").num(rep.throughput());
    b.key("outcomes").beginArray();
    for (const auto &o : rep.outcomes) {
        b.beginObject();
        b.key("label").str(o.scenario.label());
        if (o.failed) {
            b.key("status").str("error");
            b.key("error").str(o.error);
        } else {
            b.key("status").str(simStatusName(o.result.status));
            b.key("cycles").num(
                static_cast<std::uint64_t>(o.result.totalCycles));
        }
        b.endObject();
    }
    b.endArray();
    return {b.finish()};
}

SimService::Response
SimService::doList(const Request &req)
{
    JsonBuilder b = beginResponse(req, true);
    b.key("designs").beginArray();
    for (const auto *suite :
         {&designs::typeBCDesigns(), &designs::typeADesigns()}) {
        for (const auto &e : *suite) {
            b.beginObject();
            b.key("name").str(e.name);
            b.key("description").str(e.description);
            b.endObject();
        }
    }
    b.endArray();
    return {b.finish()};
}

SimService::Response
SimService::doStats(const Request &req)
{
    JsonBuilder b = beginResponse(req, true);
    b.key("jobs").num(jobs());
    b.key("served").num(served_.load(std::memory_order_relaxed));
    b.key("uptime_seconds")
        .num(std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - started_)
                 .count());
    // Includes this stats request itself. Per-op counts and quantiles
    // come from the process-wide registry: a test process hosting
    // several services sees their union, exactly like a scrape would.
    b.key("inflight").num(inflightGauge().value());
    b.key("requests").beginObject();
    for (const char *opName : kKnownOps) {
        const OpMetrics &om = opMetricsFor(opName);
        const obs::Histogram::Snapshot snap = om.latencyUs.snapshot();
        b.key(opName).beginObject();
        b.key("count").num(om.requests.value());
        b.key("errors").num(om.errors.value());
        b.key("p50_us").num(snap.quantile(0.50));
        b.key("p90_us").num(snap.quantile(0.90));
        b.key("p99_us").num(snap.quantile(0.99));
        b.endObject();
    }
    b.endObject();
    {
        const obs::Histogram::Snapshot qw =
            obs::Registry::global().histogram("serve.queue_wait_us")
                .snapshot();
        b.key("queue_wait").beginObject();
        b.key("count").num(qw.count);
        b.key("p50_us").num(qw.quantile(0.50));
        b.key("p99_us").num(qw.quantile(0.99));
        b.endObject();
    }
    {
        sync::LockGuard lock(cachesMu_);
        b.key("designs_cached").num(caches_.size());

        // Compile-pipeline statistics aggregated over every pooled run
        // of every cached design: what the optimization passes removed
        // from the graphs this service is serving probes against.
        opt::CompileStats agg;
        bool any = false;
        for (const auto &[name, dc] : caches_) {
            if (!dc->cache)
                continue;
            const opt::CompileStats s = dc->cache->compileStats();
            if (s.origNodes == 0)
                continue; // empty pool
            if (!any) {
                agg = s;
                any = true;
            } else {
                agg.accumulate(s);
            }
        }
        b.key("opt").beginObject();
        b.key("level").str(any ? opt::optLevelName(agg.level) : "none");
        b.key("orig_nodes").num(agg.origNodes);
        b.key("opt_nodes").num(agg.optNodes);
        b.key("orig_edges").num(agg.origEdges);
        b.key("opt_edges").num(agg.optEdges);
        b.key("orig_constraints").num(agg.origConstraints);
        b.key("kept_constraints").num(agg.keptConstraints);
        b.key("elimination").num(agg.elimination());
        b.key("passes").beginArray();
        for (const opt::PassStats &p : agg.passes) {
            b.beginObject();
            b.key("pass").str(p.pass);
            b.key("nodes_eliminated").num(p.nodesEliminated);
            b.key("edges_eliminated").num(p.edgesEliminated);
            b.key("constraints_eliminated").num(p.constraintsEliminated);
            b.endObject();
        }
        b.endArray();
        b.endObject();
    }
    if (store_)
        b.key("store").str(store_->dir());
    else
        b.key("store").null();
    return {b.finish()};
}

SimService::Response
SimService::doMetrics(const Request &req)
{
    // Full registry snapshot. The metrics JSON is spliced in verbatim —
    // Registry::toJson() emits canonical JSON, so the response stays a
    // single well-formed object.
    JsonBuilder b = beginResponse(req, true);
    b.key("metrics").rawValue(obs::Registry::global().toJson());
    if (optionalString(req, "format", "json") == "prometheus")
        b.key("prometheus").str(obs::Registry::global().toPrometheus());
    return {b.finish()};
}

// ---------------------------------------------------------------------------
// Transports.
// ---------------------------------------------------------------------------

namespace
{

/** @return true when line parses as a request whose op is "shutdown". */
bool
isShutdownRequest(const std::string &line)
{
    try {
        const JsonValue doc = JsonValue::parse(line);
        const JsonValue *op = doc.find("op");
        return op && op->isString() && op->str() == "shutdown";
    } catch (const std::exception &) {
        return false; // malformed lines get their error response later
    }
}

bool
blankLine(const std::string &line)
{
    return std::all_of(line.begin(), line.end(), [](char c) {
        return c == ' ' || c == '\t' || c == '\r';
    });
}

/**
 * Request lines larger than this are rejected without being buffered
 * whole: the resident service must not be OOM-able by one client
 * streaming an endless line. Every legitimate request is tiny; 1 MiB
 * leaves three orders of magnitude of headroom.
 */
constexpr std::size_t kMaxRequestLine = 1u << 20;

/** The error response an over-long request line earns. */
std::string
oversizeError()
{
    JsonBuilder b;
    b.key("id").null();
    b.key("ok").boolean(false);
    b.key("error").str(strf("request line exceeds %zu bytes",
                            kMaxRequestLine));
    return b.finish();
}

enum class LineRead : std::uint8_t
{
    Ok,      ///< A complete (possibly EOF-terminated) line.
    TooLong, ///< Line exceeded kMaxRequestLine; remainder discarded.
    Eof,     ///< End of input, nothing buffered.
};

/** Bounded line read: never buffers more than the cap. */
LineRead
readBoundedLine(std::istream &in, std::string &line)
{
    line.clear();
    for (;;) {
        const int c = in.get();
        if (c == std::char_traits<char>::eof())
            return line.empty() ? LineRead::Eof : LineRead::Ok;
        if (c == '\n')
            return LineRead::Ok;
        if (line.size() >= kMaxRequestLine) {
            int d;
            do {
                d = in.get();
            } while (d != std::char_traits<char>::eof() && d != '\n');
            return LineRead::TooLong;
        }
        line += static_cast<char>(c);
    }
}

} // namespace

int
serveLines(SimService &svc, std::istream &in, std::ostream &out)
{
    sync::Mutex outMu;
    const auto emit = [&](const std::string &response) {
        sync::LockGuard lock(outMu);
        out << response << '\n';
        out.flush();
    };

    std::string line;
    for (;;) {
        const LineRead got = readBoundedLine(in, line);
        if (got == LineRead::Eof)
            break;
        if (got == LineRead::TooLong) {
            emit(oversizeError());
            continue;
        }
        if (blankLine(line))
            continue;
        if (isShutdownRequest(line)) {
            // Graceful drain: stop reading, let every in-flight request
            // answer, then answer the shutdown itself — always the last
            // response of the session.
            svc.drain();
            emit(svc.handle(line));
            return 0;
        }
        svc.submit(line, emit);
    }
    svc.drain();
    return 0;
}

int
serveUnixSocket(SimService &svc, const std::string &path)
{
#ifdef OMNISIM_HAVE_UNIX_SOCKETS
    // A client vanishing mid-response must never kill the resident
    // service: sends already pass MSG_NOSIGNAL, but a platform without
    // it on some path (or a stray write to a dead descriptor) would
    // raise SIGPIPE and take the whole process down. Ignore it for the
    // lifetime of the service loop — the send()/recv() return codes
    // carry all the information we act on.
    ::signal(SIGPIPE, SIG_IGN);

    sockaddr_un addr{};
    if (path.size() >= sizeof(addr.sun_path)) {
        warn(strf("serve: socket path '%s' too long", path.c_str()));
        return 1;
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("serve: cannot create socket");
        return 1;
    }
    addr.sun_family = AF_UNIX;
    path.copy(addr.sun_path, path.size());
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 8) != 0) {
        warn(strf("serve: cannot bind '%s'", path.c_str()));
        ::close(fd);
        return 1;
    }

    bool sawShutdown = false;
    while (!sawShutdown) {
        // EINTR is routine for a long-lived accept (any signal delivery
        // interrupts it); only real errors end the serving loop.
        int cfd;
        do {
            cfd = ::accept(fd, nullptr, nullptr);
        } while (cfd < 0 && errno == EINTR);
        if (cfd < 0)
            break;

        sync::Mutex outMu;
        const auto emit = [&](const std::string &response) {
            sync::LockGuard lock(outMu);
            std::string framed = response;
            framed += '\n';
            std::size_t off = 0;
            while (off < framed.size()) {
                const ssize_t sent =
                    ::send(cfd, framed.data() + off, framed.size() - off,
                           MSG_NOSIGNAL);
                if (sent < 0 && errno == EINTR)
                    continue; // interrupted mid-response: keep sending
                if (sent <= 0)
                    return; // peer went away; nothing useful to do
                off += static_cast<std::size_t>(sent);
            }
        };

        // One request per '\n'-terminated line; a final line the peer
        // half-closes without terminating is still answered (matching
        // the stdio transport), and a partial line growing past the
        // request cap drops the connection after an error response
        // instead of buffering without bound.
        const auto handleLine = [&](const std::string &line) {
            if (blankLine(line))
                return;
            if (isShutdownRequest(line)) {
                svc.drain();
                emit(svc.handle(line));
                sawShutdown = true;
                return;
            }
            svc.submit(line, emit);
        };

        std::string buf;
        char chunk[1 << 14];
        bool connectionOpen = true;
        while (connectionOpen && !sawShutdown) {
            const ssize_t got = ::recv(cfd, chunk, sizeof(chunk), 0);
            if (got < 0 && errno == EINTR)
                continue;
            if (got <= 0) {
                if (got == 0 && !buf.empty())
                    handleLine(buf); // unterminated final request
                break;
            }
            buf.append(chunk, static_cast<std::size_t>(got));
            std::size_t start = 0;
            for (std::size_t nl = buf.find('\n', start);
                 nl != std::string::npos; nl = buf.find('\n', start)) {
                handleLine(buf.substr(start, nl - start));
                start = nl + 1;
                if (sawShutdown) {
                    connectionOpen = false;
                    break;
                }
            }
            buf.erase(0, start);
            if (connectionOpen && buf.size() > kMaxRequestLine) {
                emit(oversizeError());
                connectionOpen = false;
            }
        }
        svc.drain(); // responses write to cfd; finish them before close
        ::close(cfd);
    }
    ::close(fd);
    ::unlink(path.c_str());
    return 0;
#else
    (void)svc;
    warn(strf("serve: Unix sockets unavailable on this platform "
              "(wanted '%s'); use stdio mode", path.c_str()));
    return 1;
#endif
}

} // namespace omnisim::serve
