/**
 * @file
 * Minimal JSON support for the serve protocol (src/serve/): a
 * recursive-descent parser into a JsonValue tree for incoming request
 * lines, and a JsonBuilder emitter for responses. Self-contained by
 * design — the serve layer must not pull in a dependency the container
 * does not have — and hardened for untrusted input: depth-limited
 * recursion, strict UTF-16 escape handling, and FatalError (never UB,
 * never abort) on malformed text.
 */

#ifndef OMNISIM_SERVE_JSON_HH
#define OMNISIM_SERVE_JSON_HH

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/logging.hh"

namespace omnisim::serve
{

/** One parsed JSON value. */
class JsonValue
{
  public:
    enum class Kind : std::uint8_t
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object,
    };

    /**
     * Parse one JSON document (must consume the whole input).
     * @throws FatalError on malformed text or nesting deeper than 64.
     */
    static JsonValue parse(std::string_view text);

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isNumber() const { return kind_ == Kind::Number; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    /** @return the boolean payload (Bool only). */
    bool boolean() const;

    /** @return the numeric payload (Number only), as a double. */
    double number() const;

    /**
     * @return true when this number carries an exact 64-bit integer
     * payload (an integer lexeme that fits u64, or a non-negative i64 /
     * any magnitude representable as below). Integers above 2^53 keep
     * full fidelity through this path — ids, depths and cycle counts
     * must never be rounded through a double.
     */
    bool isExactInt() const { return kind_ == Kind::Number && intExact_; }

    /** @return the string payload (String only). */
    const std::string &str() const;

    /** @return array elements (Array only). */
    const std::vector<JsonValue> &array() const;

    /** @return object members in input order (Object only). */
    const std::vector<std::pair<std::string, JsonValue>> &members() const;

    /** @return the named member, or null when absent (Object only). */
    const JsonValue *find(const std::string &key) const;

    /**
     * @return the numeric payload as an unsigned integer, exactly.
     * Integer lexemes are decoded without ever passing through a
     * double, so every value up to 2^64-1 round-trips bit-exactly.
     * @throws FatalError when not a whole number in [0, max], or when
     *         the number reached the parser in a lossy form (fraction,
     *         exponent, or magnitude beyond 64 bits) and exceeds the
     *         2^53 range a double can represent exactly — silent
     *         truncation is never an option for protocol fields.
     */
    std::uint64_t asU64(const char *what, std::uint64_t max) const;

    /**
     * @return the numeric payload as a signed 64-bit integer, exactly.
     * @throws FatalError when the number is not exactly representable
     *         as an int64_t (same lossiness rules as asU64).
     */
    std::int64_t asI64(const char *what) const;

    /** Re-serialize (canonical escaping; numbers via %.17g). */
    std::string dump() const;

    // Construction (used by the parser; handy in tests).
    JsonValue() = default;
    static JsonValue makeNull() { return JsonValue(); }
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double n);
    static JsonValue makeInt(std::int64_t n);
    static JsonValue makeUInt(std::uint64_t n);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> elems);
    static JsonValue
    makeObject(std::vector<std::pair<std::string, JsonValue>> members);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0.0;
    /** Exact integer payload: magnitude + sign, valid when intExact_.
     *  Covers all of u64 and all of i64 (the double num_ is then only
     *  an approximation for number()). */
    bool intExact_ = false;
    bool intNeg_ = false;
    std::uint64_t intMag_ = 0;
    std::string str_;
    std::vector<JsonValue> elems_;
    std::vector<std::pair<std::string, JsonValue>> members_;
};

/** Escape + quote a string for JSON output. */
std::string jsonQuote(std::string_view s);

/**
 * Streaming JSON object/array builder for responses — same shape as
 * the bench JsonWriter but with full string escaping, since service
 * output carries arbitrary error messages from the engine.
 */
class JsonBuilder
{
  public:
    JsonBuilder() { out_ += '{'; }

    JsonBuilder &key(std::string_view k);
    JsonBuilder &str(std::string_view v);
    JsonBuilder &num(double v);
    JsonBuilder &num(std::uint64_t v);
    /** Exact signed emission — negatives must never wrap through u64. */
    JsonBuilder &num(std::int64_t v);
    /** Any other integral count (size_t, unsigned, int, ...), routed to
     *  the exact 64-bit emitter matching its signedness. */
    template <typename Int,
              typename = std::enable_if_t<std::is_integral_v<Int> &&
                                          !std::is_same_v<Int, bool> &&
                                          !std::is_same_v<Int,
                                                          std::uint64_t> &&
                                          !std::is_same_v<Int,
                                                          std::int64_t>>>
    JsonBuilder &
    num(Int v)
    {
        if constexpr (std::is_signed_v<Int>)
            return num(static_cast<std::int64_t>(v));
        else
            return num(static_cast<std::uint64_t>(v));
    }
    JsonBuilder &boolean(bool v);
    JsonBuilder &null();
    /** Splice an already-serialized JSON fragment (request id echo). */
    JsonBuilder &rawValue(std::string_view json);
    JsonBuilder &beginObject();
    JsonBuilder &endObject();
    JsonBuilder &beginArray();
    JsonBuilder &endArray();

    /** Close the top-level object and return the document. */
    std::string finish();

  private:
    void comma();
    JsonBuilder &value(std::string_view text);

    std::string out_;
    bool fresh_ = true;
};

} // namespace omnisim::serve

#endif // OMNISIM_SERVE_JSON_HH
