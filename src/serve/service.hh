/**
 * @file
 * The long-lived simulation service (`omnisim_cli serve`): a JSON-lines
 * request/response protocol over stdin/stdout or a Unix socket, turning
 * the simulator from a batch tool into a warm-cache server.
 *
 * One request per line, one response per line. Responses carry the
 * request's `id` verbatim and may arrive out of order — requests are
 * dispatched onto a resident batch::TaskPool and execute concurrently.
 * Every design's evaluations share one process-wide RunStore-backed
 * dse::EvalCache, so the first `resimulate` for a design another
 * process already traced is served at §7.2 incremental cost, and every
 * full run this process pays for is published back for the next one.
 *
 * Protocol (see README for a worked session):
 *
 *   {"id":1,"op":"simulate","design":"fifo_chain",
 *    "depths":{"c0":4},"engine":"omnisim"}
 *   {"id":2,"op":"resimulate","design":"fifo_chain","depths":{"c0":8}}
 *   {"id":3,"op":"dse","design":"reconvergent","strategy":"grid",
 *    "budget":64}
 *   {"id":4,"op":"batch","designs":["fifo_chain"],"engines":["omnisim"],
 *    "seeds":2}
 *   {"id":5,"op":"list"}   {"id":6,"op":"stats"}   {"id":7,"op":"shutdown"}
 *   {"id":8,"op":"metrics"}                // full telemetry snapshot
 *   {"id":9,"op":"metrics","format":"prometheus"}
 *
 * Error isolation: a malformed line, unknown op, unknown design, or an
 * engine failure produces {"id":...,"ok":false,"error":"..."} for that
 * request only; the service keeps serving. `shutdown` drains all
 * in-flight requests, answers last, and ends the session.
 */

#ifndef OMNISIM_SERVE_SERVICE_HH
#define OMNISIM_SERVE_SERVICE_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <string>

#include "core/omnisim.hh"
#include "support/sync.hh"

namespace omnisim::batch
{
class TaskPool;
}
namespace omnisim::dse
{
class EvalCache;
}
namespace omnisim::io
{
class RunStore;
}

namespace omnisim::serve
{

/** Service configuration. */
struct ServeOptions
{
    /** Worker threads for request dispatch; 0 = hardware_concurrency. */
    unsigned jobs = 0;

    /** RunStore directory; empty disables persistence (in-memory
     *  warm cache only). */
    std::string storeDir;

    /** Reuse-pool cap per design (dse::EvalCache maxPool). */
    std::size_t maxPoolPerDesign = 4;

    /** Engine options for OmniSim runs the service performs. */
    OmniSimOptions engine;
};

/**
 * The request dispatcher. Owns the worker pool, the optional RunStore,
 * and one EvalCache per design, shared by every request and every
 * transport. Thread-safe: handle() may be called from any thread, and
 * submit() fans requests across the pool.
 */
class SimService
{
  public:
    explicit SimService(ServeOptions opts = {});
    ~SimService();

    SimService(const SimService &) = delete;
    SimService &operator=(const SimService &) = delete;

    /** @return resolved worker count. */
    unsigned jobs() const;

    /** @return the run store, or null when persistence is disabled. */
    io::RunStore *store() { return store_.get(); }

    /**
     * Handle one request line synchronously and return the response
     * line (no trailing newline). Never throws — all errors become
     * {"ok":false} responses.
     */
    std::string handle(const std::string &line);

    /**
     * Handle one request line on the worker pool. sink is called
     * exactly once, from a worker thread, with the response line;
     * concurrent sinks are the caller's business (the stream loops
     * serialize writes with a mutex).
     */
    void submit(std::string line, std::function<void(std::string)> sink);

    /** Block until every submitted request has been answered. */
    void drain();

    /** @return true once a shutdown request has been handled. */
    bool shutdownRequested() const;

    /** @return requests answered so far (including errors). */
    std::uint64_t requestsServed() const;

  private:
    struct Response;
    struct DesignCache;

    /**
     * Get-or-create the design's shared evaluation cache. Entry
     * creation holds the global map lock only briefly; the expensive
     * store rehydration runs outside it (per-design once), so a first
     * request for one design never stalls requests for others.
     */
    DesignCache &cacheFor(const std::string &design)
        OMNISIM_EXCLUDES(cachesMu_);

    Response dispatch(const std::string &line);
    Response doSimulate(const struct Request &req);
    Response doResimulate(const struct Request &req);
    Response doDse(const struct Request &req);
    Response doBatch(const struct Request &req);
    Response doList(const struct Request &req);
    Response doStats(const struct Request &req);
    Response doMetrics(const struct Request &req);

    ServeOptions opts_;
    std::unique_ptr<io::RunStore> store_;
    std::unique_ptr<batch::TaskPool> pool_;

    mutable sync::Mutex cachesMu_;
    std::map<std::string, std::unique_ptr<DesignCache>> caches_
        OMNISIM_GUARDED_BY(cachesMu_);

    std::atomic<bool> shutdown_{false};
    std::atomic<std::uint64_t> served_{0};
    const std::chrono::steady_clock::time_point started_ =
        std::chrono::steady_clock::now();
};

/**
 * Drive a service from a line stream: read requests from in, stream
 * responses to out (mutex-serialized, flushed per line). Returns when
 * a shutdown request has been answered or in reaches EOF (in-flight
 * requests are drained either way).
 * @return 0 on clean shutdown/EOF.
 */
int serveLines(SimService &svc, std::istream &in, std::ostream &out);

/**
 * Serve connections on a Unix-domain socket at path (unlinked and
 * re-bound on startup). Connections are accepted one at a time;
 * requests within a connection run concurrently. Returns after a
 * shutdown request.
 * @return 0 on clean shutdown; 1 on socket errors.
 */
int serveUnixSocket(SimService &svc, const std::string &path);

} // namespace omnisim::serve

#endif // OMNISIM_SERVE_SERVICE_HH
